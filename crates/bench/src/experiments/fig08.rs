//! Figure 8: average and maximum per-sensor load (number of counters
//! transmitted) of the four tree frequent-items algorithms, on LabData
//! streams and on the §7.4.2 disjoint-uniform synthetic streams.
//!
//! Paper parameters: ε = 0.1 %, support s = 1 %, no message loss. Shape
//! targets: `Min Total-load` halves `Min Max-load`'s total on the
//! synthetic streams; `Hybrid` is best-or-near-best on LabData;
//! `Quantiles-based` is the most expensive across the board.

use crate::report::Table;
use crate::Scale;
use td_frequent::items::ItemBag;
use td_frequent::quantile_based::{run_tree_gk, QuantileBasedConfig};
use td_frequent::tree::{run_tree, GradientKind, TreeFrequentConfig};
use td_netsim::loss::NoLoss;
use td_netsim::network::Network;
use td_netsim::rng::substream;
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::rings::Rings;
use td_topology::tree::Tree;
use td_workloads::items::{disjoint_uniform_bags, labdata_bags};
use td_workloads::labdata::LabData;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::TrialPool;

/// The paper's error margin ε = 0.1%.
pub const EPS: f64 = 0.001;

/// Loads of one algorithm on one dataset.
#[derive(Clone, Debug)]
pub struct LoadRow {
    /// Algorithm name as in the figure legend.
    pub algorithm: &'static str,
    /// Average per-sensor load (counters).
    pub avg_real: f64,
    /// Maximum per-sensor load on the real (LabData) streams.
    pub max_real: u64,
    /// Average per-sensor load on the synthetic streams.
    pub avg_synth: f64,
    /// Maximum per-sensor load on the synthetic streams.
    pub max_synth: u64,
}

fn tree_for(net: &Network, seed: u64) -> Tree {
    let rings = Rings::build(net);
    let mut rng = substream(seed, 0xF08);
    build_bushy_tree(net, &rings, BushyOptions::default(), &mut rng)
}

fn loads(
    net: &Network,
    tree: &Tree,
    bags: &[ItemBag],
    algorithm: &'static str,
    seed: u64,
) -> (f64, u64) {
    let mut rng = substream(seed, 0x10AD);
    match algorithm {
        "Quantiles-based" => {
            let res = run_tree_gk(
                net,
                tree,
                &QuantileBasedConfig::new(EPS),
                bags,
                &NoLoss,
                0,
                &mut rng,
            );
            (
                res.stats.average_words_per_sensor(),
                res.stats.max_words_per_sensor(),
            )
        }
        name => {
            let gradient = match name {
                "Min Max-load" => GradientKind::MinMaxLoad,
                "Min Total-load" => GradientKind::MinTotalLoad,
                "Hybrid" => GradientKind::Hybrid,
                other => panic!("unknown algorithm {other}"),
            };
            let cfg = TreeFrequentConfig::new(EPS).with_gradient(gradient);
            let res = run_tree(net, tree, &cfg, bags, &NoLoss, 0, &mut rng);
            (
                res.stats.average_words_per_sensor(),
                res.stats.max_words_per_sensor(),
            )
        }
    }
}

/// The four algorithms in the figure's legend order.
pub const ALGORITHMS: [&str; 4] = [
    "Min Max-load",
    "Min Total-load",
    "Hybrid",
    "Quantiles-based",
];

/// Run Figure 8.
///
/// Stream sizes are floored so that `ε·n_local ≥ 1` at the leaves: with
/// the paper's ε = 0.1 % the pruning machinery only has anything to do
/// once nodes hold thousands of items (the real deployment had ~42k
/// readings per mote), so tiny smoke streams would make every gradient
/// trivially identical.
pub fn run(scale: Scale, seed: u64) -> Vec<LoadRow> {
    let items = scale.items_per_node.max(2500);
    // Real data: LabData discretized light streams.
    let lab = LabData::new(seed);
    let lab_tree = tree_for(lab.network(), seed);
    let lab_bags = labdata_bags(&lab, items as u64);

    // Synthetic: disjoint uniform streams on a synthetic deployment.
    // One uniform value per draw on average (counts ~ Poisson(1)): the
    // all-tail distribution that separates the gradients most sharply.
    let synth_net = Synthetic::small(scale.sensors.min(150)).build(seed);
    let synth_tree = tree_for(&synth_net, seed ^ 1);
    let synth_bags = disjoint_uniform_bags(&synth_net, items, items as u64, seed);

    TrialPool::new().map(seed, &ALGORITHMS, |_, &algorithm, _pool_rng| {
        let (avg_real, max_real) = loads(lab.network(), &lab_tree, &lab_bags, algorithm, seed);
        let (avg_synth, max_synth) = loads(&synth_net, &synth_tree, &synth_bags, algorithm, seed);
        LoadRow {
            algorithm,
            avg_real,
            max_real,
            avg_synth,
            max_synth,
        }
    })
}

/// Render the rows.
pub fn table(rows: &[LoadRow]) -> Table {
    let mut t = Table::new(
        "Figure 8: per-sensor load (counters) — eps = 0.1%, no loss",
        &[
            "algorithm",
            "avg_load_real",
            "max_load_real",
            "avg_load_synth",
            "max_load_synth",
        ],
    );
    for r in rows {
        t.row(vec![
            r.algorithm.to_string(),
            format!("{:.1}", r.avg_real),
            r.max_real.to_string(),
            format!("{:.1}", r.avg_synth),
            r.max_synth.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_orderings_hold_at_smoke_scale() {
        let rows = run(Scale::smoke(), 11);
        let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap().clone();
        let mml = get("Min Max-load");
        let mtl = get("Min Total-load");
        let qb = get("Quantiles-based");
        // Min Total-load beats Min Max-load on total (= average) load for
        // the disjoint-uniform streams (the paper's "half the total").
        assert!(
            mtl.avg_synth < mml.avg_synth,
            "MTL {} !< MML {}",
            mtl.avg_synth,
            mml.avg_synth
        );
        // Quantiles-based is the most expensive on the real streams.
        assert!(
            qb.avg_real >= mtl.avg_real && qb.avg_real >= mml.avg_real,
            "quantiles-based unexpectedly cheap: {qb:?}"
        );
    }
}
