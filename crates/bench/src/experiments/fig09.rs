//! Figure 9: false negatives of the frequent-items schemes vs loss rate,
//! on LabData streams — without (a) and with (b) tree retransmissions.
//!
//! Parameters per §7.4.3: ε = 0.1 %, s = 1 %, best-effort FM counters in
//! the multi-path parts, reporting threshold `(s − ε)·N̂`. Shape targets:
//! TAG's false negatives climb steeply with loss; SD stays low; TD tracks
//! the better of the two; two tree retransmissions rescue TAG at low loss
//! but SD/TD still win beyond p ≈ 0.5; false positives stay small.

use crate::report::Table;
use crate::Scale;
use std::collections::BTreeMap;
use td_frequent::items::{true_frequent, ItemBag};
use td_frequent::multipath::{run_rings, MultipathConfig};
use td_frequent::tree::{run_tree, TreeFrequentConfig};
use td_netsim::loss::Global;
use td_netsim::rng::substream;
use td_quantiles::gradient::MinTotalLoad;
use td_sketches::counter::FmFactory;
use td_topology::domination::domination_factor;
use td_topology::rings::Rings;
use td_topology::tree::{build_tag_tree, ParentSelection};
use td_workloads::items::labdata_bags;
use td_workloads::labdata::LabData;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::metrics::{false_negative_rate, false_positive_rate};
use tributary_delta::protocol::FreqProtocol;
use tributary_delta::session::{Scheme, SessionBuilder};

/// ε = 0.1 % and s = 1 % (§7.4.3).
pub const EPS: f64 = 0.001;
/// Support threshold.
pub const SUPPORT: f64 = 0.01;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct FnPoint {
    /// Loss rate.
    pub p: f64,
    /// False-negative percentage per scheme.
    pub fn_pct: BTreeMap<&'static str, f64>,
    /// False-positive percentage per scheme.
    pub fp_pct: BTreeMap<&'static str, f64>,
}

struct Fixture {
    lab: LabData,
    bags: Vec<ItemBag>,
    truth: Vec<u64>,
    n_total: u64,
}

fn fixture(scale: Scale, seed: u64) -> Fixture {
    let lab = LabData::new(seed);
    let bags = labdata_bags(&lab, scale.items_per_node as u64);
    let truth = true_frequent(&bags, SUPPORT);
    let n_total: u64 = bags.iter().map(|b| b.total()).sum();
    Fixture {
        lab,
        bags,
        truth,
        n_total,
    }
}

fn rates(reported: &[u64], truth: &[u64]) -> (f64, f64) {
    (
        100.0 * false_negative_rate(reported, truth),
        100.0 * false_positive_rate(reported, truth),
    )
}

/// §7.4.3's reporting rule: items whose estimated count exceeds
/// `(s − ε)` of the total count. The support threshold is defined against
/// the query's total N (the deployment knows its own data volume), so
/// loss-induced undercounting produces false negatives — exactly what
/// Figure 9 measures.
fn report_against_total(estimates: impl Iterator<Item = (u64, f64)>, n_true: u64) -> Vec<u64> {
    let threshold = (SUPPORT - EPS) * n_true as f64;
    estimates
        .filter(|&(_, c)| c > threshold)
        .map(|(u, _)| u)
        .collect()
}

fn tag_rates(fx: &Fixture, p: f64, retries: u32, runs: u64, seed: u64) -> (f64, f64) {
    tag_rates_with(fx, &Global::new(p), retries, runs, seed)
}

fn tag_rates_with<M: td_netsim::loss::LossModel>(
    fx: &Fixture,
    model: &M,
    retries: u32,
    runs: u64,
    seed: u64,
) -> (f64, f64) {
    let net = fx.lab.network();
    let (mut fn_sum, mut fp_sum) = (0.0, 0.0);
    for run in 0..runs {
        let mut rng = substream(seed, 0x7A6 + run);
        let tree = build_tag_tree(net, ParentSelection::Random, None, false, &mut rng);
        let cfg = TreeFrequentConfig::new(EPS).with_retransmit(retries);
        let res = run_tree(net, &tree, &cfg, &fx.bags, model, run, &mut rng);
        let reported =
            report_against_total(res.summary.iter().map(|(u, c)| (u, c as f64)), fx.n_total);
        let (fnr, fpr) = rates(&reported, &fx.truth);
        fn_sum += fnr;
        fp_sum += fpr;
    }
    (fn_sum / runs as f64, fp_sum / runs as f64)
}

fn sd_rates(fx: &Fixture, p: f64, runs: u64, seed: u64) -> (f64, f64) {
    sd_rates_with(fx, &Global::new(p), runs, seed)
}

fn sd_rates_with<M: td_netsim::loss::LossModel>(
    fx: &Fixture,
    model: &M,
    runs: u64,
    seed: u64,
) -> (f64, f64) {
    let net = fx.lab.network();
    let rings = Rings::build(net);
    let cfg = MultipathConfig::new(EPS, 2.0, fx.n_total * 2, FmFactory { bitmaps: 16 });
    let (mut fn_sum, mut fp_sum) = (0.0, 0.0);
    for run in 0..runs {
        let mut rng = substream(seed, 0x5D0 + run);
        let res = run_rings(net, &rings, &cfg, &fx.bags, model, run, &mut rng);
        let reported = report_against_total(
            res.estimates.counts.iter().map(|(&u, &c)| (u, c)),
            fx.n_total,
        );
        let (fnr, fpr) = rates(&reported, &fx.truth);
        fn_sum += fnr;
        fp_sum += fpr;
    }
    (fn_sum / runs as f64, fp_sum / runs as f64)
}

fn td_rates(fx: &Fixture, p: f64, retries: u32, scale: Scale, seed: u64) -> (f64, f64) {
    td_rates_with(fx, &Global::new(p), retries, scale, seed)
}

fn td_rates_with<M: td_netsim::loss::LossModel>(
    fx: &Fixture,
    model: &M,
    retries: u32,
    scale: Scale,
    seed: u64,
) -> (f64, f64) {
    let net = fx.lab.network();
    let (mut fn_sum, mut fp_sum) = (0.0, 0.0);
    for run in 0..scale.runs {
        let mut rng = substream(seed, 0x7D0 + run);
        let session = scale
            .configure(SessionBuilder::new(Scheme::Td).tree_retransmit(retries))
            .build(net, &mut rng);
        // Split ε between the tree and multi-path parts (§6.3).
        let d = session
            .topology()
            .map(|t| domination_factor(t.tree(), 0.05))
            .unwrap_or(2.0)
            .max(1.1);
        let gradient = MinTotalLoad::new(EPS / 2.0, d);
        let mp_cfg =
            MultipathConfig::new(EPS / 2.0, 2.0, fx.n_total * 2, FmFactory { bitmaps: 16 });
        let mut driver = Driver::new(session, 0);
        let out = driver
            .run_protocol(
                |_epoch| FreqProtocol::new(mp_cfg.clone(), gradient, SUPPORT, &fx.bags),
                model,
                scale.warmup / 2 + 5,
                &mut rng,
            )
            .expect("ran at least one epoch");
        let reported = report_against_total(
            out.estimates.counts.iter().map(|(&u, &c)| (u, c)),
            fx.n_total,
        );
        let (fnr, fpr) = rates(&reported, &fx.truth);
        fn_sum += fnr;
        fp_sum += fpr;
    }
    (fn_sum / scale.runs as f64, fp_sum / scale.runs as f64)
}

/// The lab's regional failure: the west half of the 40 m × 30 m floor
/// loses at `p1`, the rest at 0.05 — §7.4.3's full-paper extension
/// ("under Regional(p, 0.05), TD is significantly better than TAG or SD").
fn lab_regional(p1: f64) -> td_netsim::loss::Regional {
    td_netsim::loss::Regional::new(
        td_netsim::node::Rect::from_coords(0.0, 0.0, 20.0, 30.0),
        p1,
        0.05,
    )
}

/// §7.4.3 extension: false negatives under `Regional(p, 0.05)` on the lab
/// floorplan. Same schemes and reporting rule as the global sweep.
pub fn run_regional(scale: Scale, seed: u64) -> Vec<FnPoint> {
    let fx = fixture(scale, seed);
    let ps: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();
    TrialPool::new().map(seed, &ps, |_, &p, _pool_rng| {
        let model = lab_regional(p);
        let mut fn_pct = BTreeMap::new();
        let mut fp_pct = BTreeMap::new();
        let (fnr, fpr) = tag_rates_with(&fx, &model, 0, scale.runs, seed);
        fn_pct.insert("TAG", fnr);
        fp_pct.insert("TAG", fpr);
        let (fnr, fpr) = sd_rates_with(&fx, &model, scale.runs, seed);
        fn_pct.insert("SD", fnr);
        fp_pct.insert("SD", fpr);
        let (fnr, fpr) = td_rates_with(&fx, &model, 0, scale, seed);
        fn_pct.insert("TD", fnr);
        fp_pct.insert("TD", fpr);
        FnPoint { p, fn_pct, fp_pct }
    })
}

/// Run the sweep: `retries = 0` is Figure 9(a), `retries = 2` Figure 9(b)
/// (retransmissions apply to tree links only; SD is unaffected).
pub fn run(retries: u32, scale: Scale, seed: u64) -> Vec<FnPoint> {
    let fx = fixture(scale, seed);
    let ps: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();
    TrialPool::new().map(seed, &ps, |_, &p, _pool_rng| {
        let mut fn_pct = BTreeMap::new();
        let mut fp_pct = BTreeMap::new();
        let (fnr, fpr) = tag_rates(&fx, p, retries, scale.runs, seed);
        fn_pct.insert("TAG", fnr);
        fp_pct.insert("TAG", fpr);
        let (fnr, fpr) = sd_rates(&fx, p, scale.runs, seed);
        fn_pct.insert("SD", fnr);
        fp_pct.insert("SD", fpr);
        let (fnr, fpr) = td_rates(&fx, p, retries, scale, seed);
        fn_pct.insert("TD", fnr);
        fp_pct.insert("TD", fpr);
        FnPoint { p, fn_pct, fp_pct }
    })
}

/// Render the sweep.
pub fn table(title: &str, points: &[FnPoint]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "loss_rate",
            "FN%_TAG",
            "FN%_SD",
            "FN%_TD",
            "FP%_TAG",
            "FP%_SD",
            "FP%_TD",
        ],
    );
    for pt in points {
        t.row(vec![
            format!("{:.1}", pt.p),
            format!("{:.1}", pt.fn_pct["TAG"]),
            format!("{:.1}", pt.fn_pct["SD"]),
            format!("{:.1}", pt.fn_pct["TD"]),
            format!("{:.1}", pt.fp_pct["TAG"]),
            format!("{:.1}", pt.fp_pct["SD"]),
            format!("{:.1}", pt.fp_pct["TD"]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_point_has_no_false_negatives() {
        let scale = Scale {
            runs: 1,
            epochs: 5,
            warmup: 10,
            sensors: 0,
            items_per_node: 150,
            workers: None,
        };
        let fx = fixture(scale, 3);
        assert!(!fx.truth.is_empty(), "workload has no frequent items");
        let (fn_tag, _) = tag_rates(&fx, 0.0, 0, 1, 3);
        assert_eq!(fn_tag, 0.0, "TAG misses items without loss");
        let (fn_sd, _) = sd_rates(&fx, 0.0, 1, 3);
        assert!(fn_sd <= 34.0, "SD lossless FN {fn_sd}% too high");
    }

    #[test]
    fn tree_collapses_at_high_loss_multipath_survives() {
        let scale = Scale {
            runs: 1,
            epochs: 5,
            warmup: 10,
            sensors: 0,
            items_per_node: 120,
            workers: None,
        };
        let fx = fixture(scale, 5);
        let (fn_tag, _) = tag_rates(&fx, 0.7, 0, 2, 5);
        let (fn_sd, _) = sd_rates(&fx, 0.7, 2, 5);
        assert!(
            fn_tag > fn_sd,
            "TAG FN {fn_tag}% not worse than SD {fn_sd}% at p=0.7"
        );
    }
}
