//! Ablations of the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. **Adaptation signal**: instrumented exact "% contributing" versus
//!    the in-band sketched Count a real base station would use (§4.2).
//! 2. **Tree construction**: Min Total-load's communication on the plain
//!    ring-restricted tree versus the §6.1.3 bushy tree (the domination
//!    factor is the constant in Lemma 3's bound).
//! 3. **Oscillation damping**: adaptation actions with and without the
//!    §4.2 damping heuristic under a steady loss rate near the threshold
//!    boundary.

use crate::report::{f, Table};
use crate::Scale;
use td_frequent::tree::{run_tree, TreeFrequentConfig};
use td_netsim::loss::{Global, NoLoss};
use td_netsim::rng::substream;
use td_topology::bushy::{build_bushy_tree, build_restricted_tree, BushyOptions};
use td_topology::domination::domination_factor;
use td_topology::rings::Rings;
use td_workloads::items::zipf_bags;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::metrics::rms_error_series;
use tributary_delta::session::{Scheme, SessionBuilder};

/// Ablation 1: exact vs in-band adaptation signal at `Global(0.3)`.
pub fn signal_ablation(scale: Scale, seed: u64) -> Table {
    let net = Synthetic::sized(scale.sensors).build(seed);
    let model = Global::new(0.3);
    let mut t = Table::new(
        "Ablation: adaptation signal (TD-Coarse, Global(0.3))",
        &[
            "signal",
            "rms",
            "final_pct_contributing",
            "final_delta_size",
        ],
    );
    let variants = [("exact (instrumented)", true), ("in-band sketch", false)];
    let rows = TrialPool::new().map(seed, &variants, |_, &(name, exact), _pool_rng| {
        let mut builder = SessionBuilder::new(Scheme::TdCoarse);
        if !exact {
            builder = builder.in_band_signal();
        }
        let mut rng = substream(seed, 0xAB1);
        let mut driver = Driver::new(scale.configure(builder).build(&net, &mut rng), scale.warmup);
        let result = driver.run_scalar(
            &td_aggregates::count::Count::default(),
            &Synthetic::count_workload(&net),
            &model,
            scale.epochs,
            |_| net.num_sensors() as f64,
            &mut rng,
        );
        vec![
            name.to_string(),
            f(rms_error_series(&result.estimates, &result.actuals)),
            f(result.last_pct_contributing),
            result.last_delta_size.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Ablation 2: bushy tree vs plain restricted tree for Min Total-load.
pub fn tree_construction_ablation(scale: Scale, seed: u64) -> Table {
    let net = Synthetic::small(scale.sensors.min(250)).build(seed);
    let rings = Rings::build(&net);
    let bags = zipf_bags(&net, scale.items_per_node, 5000, 1.1, seed);
    let mut t = Table::new(
        "Ablation: tree construction for Min Total-load (eps = 1%)",
        &["tree", "domination_factor", "total_words", "max_words"],
    );
    let mut rng = substream(seed, 0xAB2);
    let plain = build_restricted_tree(&net, &rings, &mut rng);
    let bushy = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    for (name, tree) in [("restricted (random)", &plain), ("bushy (§6.1.3)", &bushy)] {
        let mut rng = substream(seed, 0xAB3);
        let res = run_tree(
            &net,
            tree,
            &TreeFrequentConfig::new(0.01),
            &bags,
            &NoLoss,
            0,
            &mut rng,
        );
        t.row(vec![
            name.to_string(),
            format!("{:.2}", domination_factor(tree, 0.05)),
            res.stats.total_words().to_string(),
            res.stats.max_words_per_sensor().to_string(),
        ]);
    }
    t
}

/// Ablation 3: damping on/off under a loss rate that parks the system
/// near the threshold boundary (where TD-Coarse oscillates, §7.3).
pub fn damping_ablation(scale: Scale, seed: u64) -> Table {
    let net = Synthetic::sized(scale.sensors).build(seed);
    let model = Global::new(0.12);
    let mut t = Table::new(
        "Ablation: oscillation damping (TD-Coarse, Global(0.12))",
        &["damping", "adapt_actions", "final_interval_multiplier"],
    );
    let variants = [("on", true), ("off", false)];
    let rows = TrialPool::new().map(seed, &variants, |_, &(name, enabled), _pool_rng| {
        let mut cfg = *SessionBuilder::new(Scheme::TdCoarse).config();
        // A zero-width band guarantees every adaptation epoch acts, so the
        // system flaps around the threshold; damping's job is to slow the
        // flapping down.
        cfg.adapter.shrink_margin = 0.0;
        if !enabled {
            cfg.adapter.damping_after = u32::MAX; // never engages
        }
        let mut rng = substream(seed, 0xAB4);
        let session = scale
            .configure(SessionBuilder::from_config(cfg))
            .build(&net, &mut rng);
        let mut driver = Driver::new(session, scale.warmup);
        let result = driver.run_scalar(
            &td_aggregates::count::Count::default(),
            &Synthetic::count_workload(&net),
            &model,
            scale.epochs * 2,
            |_| net.num_sensors() as f64,
            &mut rng,
        );
        vec![
            name.to_string(),
            result.adapt_moves.to_string(),
            driver
                .session()
                .adapter_damping()
                .map(|d| d.to_string())
                .unwrap_or_default(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bushy_tree_not_worse_for_min_total_load() {
        let t = tree_construction_ablation(
            Scale {
                runs: 1,
                epochs: 0,
                warmup: 0,
                sensors: 150,
                items_per_node: 100,
                workers: None,
            },
            13,
        );
        assert_eq!(t.len(), 2);
    }
}
