//! §7.3's real-scenario numbers: RMS error of Sum on LabData.
//!
//! The paper reports TAG ≈ 0.5, SD ≈ 0.12, and TD/TD-Coarse ≈ 0.1 ("by
//! running synopsis diffusion over most of the nodes"). The shape to
//! reproduce: TAG ≫ SD under the lab's measured-style loss, with both TD
//! schemes at or slightly below SD.

use crate::report::{f, Table};
use crate::Scale;
use std::collections::BTreeMap;
use td_netsim::rng::substream;
use td_workloads::labdata::LabData;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::metrics::rms_error_series;
use tributary_delta::session::{Scheme, SessionBuilder};

/// RMS per scheme plus the paper's reported values.
#[derive(Clone, Debug)]
pub struct LabSumResult {
    /// Measured RMS per scheme.
    pub rms: BTreeMap<&'static str, f64>,
    /// Mean delta fraction for the TD schemes (how much of the network
    /// ran multi-path — the paper says "most").
    pub td_delta_fraction: f64,
}

/// Run the experiment. Every `(scheme, run)` pair is an independent
/// trial fanned across the pool; the per-run substream derivation is
/// unchanged, so the averages match a sequential regeneration.
pub fn run(scale: Scale, seed: u64) -> LabSumResult {
    let lab = LabData::new(seed);
    let net = lab.network();
    let model = lab.loss_model();
    let cells: Vec<(Scheme, u64)> = Scheme::all()
        .into_iter()
        .flat_map(|s| (0..scale.runs).map(move |run| (s, run)))
        .collect();
    let measured = TrialPool::new().map(seed, &cells, |_, &(scheme, run), _pool_rng| {
        let mut rng = substream(seed, 0x1ab5 + run * 131 + scheme.index() * 104_729);
        let session = scale
            .configure(SessionBuilder::new(scheme))
            .build(net, &mut rng);
        let mut driver = Driver::new(session, scale.warmup);
        let result = driver.run_scalar(
            &td_aggregates::sum::Sum::default(),
            &lab,
            &model,
            scale.epochs,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            &mut rng,
        );
        let rms = rms_error_series(&result.estimates, &result.actuals);
        let delta_frac = driver.session().delta_nodes().len() as f64 / net.num_sensors() as f64;
        (rms, delta_frac)
    });
    let mut rms = BTreeMap::new();
    let mut td_delta_fraction = 0.0;
    for (scheme, chunk) in Scheme::all()
        .iter()
        .zip(measured.chunks(scale.runs as usize))
    {
        let total: f64 = chunk.iter().map(|(r, _)| r).sum();
        rms.insert(scheme.name(), total / scale.runs as f64);
        if *scheme == Scheme::Td {
            td_delta_fraction = chunk.iter().map(|(_, d)| d).sum::<f64>() / scale.runs as f64;
        }
    }
    LabSumResult {
        rms,
        td_delta_fraction,
    }
}

/// Render against the paper's numbers.
pub fn table(result: &LabSumResult) -> Table {
    let paper: BTreeMap<&str, f64> = [("TAG", 0.5), ("SD", 0.12), ("TD-Coarse", 0.1), ("TD", 0.1)]
        .into_iter()
        .collect();
    let mut t = Table::new(
        "LabData Sum RMS (§7.3)",
        &["scheme", "measured_rms", "paper_rms"],
    );
    for scheme in ["TAG", "SD", "TD-Coarse", "TD"] {
        t.row(vec![
            scheme.to_string(),
            f(result.rms[scheme]),
            f(paper[scheme]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let scale = Scale {
            runs: 1,
            epochs: 40,
            warmup: 60,
            sensors: 0,
            items_per_node: 0,
            workers: None,
        };
        let res = run(scale, 21);
        // TAG much worse than SD; TD no worse than SD (small slack for a
        // single seeded run). The paper reports a 4x TAG/SD gap on the
        // real lab; our sparser reconstruction yields ~1.7x — same
        // ordering, weaker factor (documented in EXPERIMENTS.md).
        assert!(
            res.rms["TAG"] > 1.5 * res.rms["SD"],
            "TAG {} vs SD {}",
            res.rms["TAG"],
            res.rms["SD"]
        );
        assert!(
            res.rms["TD"] <= res.rms["SD"] * 1.25,
            "TD {} vs SD {}",
            res.rms["TD"],
            res.rms["SD"]
        );
        assert!(
            res.rms["TD-Coarse"] <= res.rms["SD"] * 1.25,
            "TD-Coarse {} vs SD {}",
            res.rms["TD-Coarse"],
            res.rms["SD"]
        );
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use td_netsim::loss::DistanceLoss;

    /// Calibration probe (run with --ignored --nocapture --release):
    /// prints TAG/SD RMS for candidate LabData loss parameters so the
    /// constants in `LabData::loss_model` can be pinned to the paper's
    /// TAG ~ 0.5 / SD ~ 0.12 split.
    #[test]
    #[ignore]
    fn probe_loss_parameters() {
        let scale = Scale {
            runs: 2,
            epochs: 60,
            warmup: 160,
            sensors: 0,
            items_per_node: 0,
            workers: None,
        };
        let lab = LabData::new(21);
        let base_positions = td_workloads::labdata::mote_positions();
        for range in [13.0f64] {
            let owned_net = td_netsim::network::Network::new(base_positions.clone(), range);
            let net = &owned_net;
            println!("--- range {range} ---");
            {
                // Topology context for interpreting the numbers.
                let rings = td_topology::rings::Rings::build(net);
                let mut recv = 0usize;
                let mut cnt = 0usize;
                for u in rings.connected_nodes() {
                    if u != td_netsim::node::BASE_STATION {
                        recv += rings.receivers(u).len();
                        cnt += 1;
                    }
                }
                println!(
                    "mean receivers/node: {:.2}, depth {}",
                    recv as f64 / cnt as f64,
                    rings.max_level()
                );
            }
            for (floor, ceil, steep) in [(0.05, 0.6, 3.0)] {
                {
                    use td_netsim::loss::LossModel;
                    let m = DistanceLoss::new(floor, ceil, steep);
                    let mut tot = 0.0;
                    let mut links = 0;
                    for u in net.node_ids() {
                        for &v in net.neighbors(u) {
                            tot += m.loss_rate(u, v, net, 0);
                            links += 1;
                        }
                    }
                    print!("mean link loss {:.3} | ", tot / links as f64);
                }
                let model = DistanceLoss::new(floor, ceil, steep);
                let mut rms = std::collections::BTreeMap::new();
                let mut pcts = std::collections::BTreeMap::new();
                for scheme in [Scheme::Tag, Scheme::Sd, Scheme::TdCoarse, Scheme::Td] {
                    let mut total = 0.0;
                    for run in 0..scale.runs {
                        let mut rng = substream(99, 0xCA1 + run * 7 + scheme.index() * 104_729);
                        let session = scale
                            .configure(SessionBuilder::new(scheme))
                            .build(net, &mut rng);
                        let mut driver = Driver::new(session, scale.warmup);
                        let mut pct_acc = 0.0;
                        let mut est = Vec::new();
                        let mut act = Vec::new();
                        driver.run(
                            &lab,
                            &model,
                            scale.epochs,
                            |set: &mut tributary_delta::query::QuerySet<'_>, values| {
                                set.register(tributary_delta::protocol::ScalarProtocol::new(
                                    td_aggregates::sum::Sum::default(),
                                    values,
                                ))
                            },
                            |view: tributary_delta::driver::EpochView<'_>, handle| {
                                if view.measured {
                                    est.push(*view.record.answers.get(handle));
                                    act.push(view.readings[1..].iter().sum::<u64>() as f64);
                                    pct_acc += view.record.pct_contributing;
                                }
                            },
                            &mut rng,
                        );
                        total += rms_error_series(&est, &act);
                        *pcts.entry(scheme.name()).or_insert(0.0) +=
                            pct_acc / scale.epochs as f64 / scale.runs as f64;
                    }
                    rms.insert(scheme.name(), total / scale.runs as f64);
                }
                println!(
                "floor {floor} ceil {ceil} steep {steep}: TAG {:.3} SD {:.3} TDC {:.3} TD {:.3} | pct TAG {:.2} SD {:.2} TDC {:.2} TD {:.2}",
                rms["TAG"], rms["SD"], rms["TD-Coarse"], rms["TD"],
                pcts["TAG"], pcts["SD"], pcts["TD-Coarse"], pcts["TD"]
            );
            }
        }
    }
}
