//! The streaming-window experiment (extension): window-answer accuracy
//! and communication cost versus window length and hop, across schemes.
//!
//! A drifting `SyntheticSum` stream (seasonal swing + regime shifts)
//! runs under 20% global loss; each `(scheme, window)` cell answers a
//! windowed `Sum` through a [`StreamSession`] and is scored by the RMS
//! relative error of its window answers against the exact windowed
//! truth recomputed from the workload. Expected shape: TAG's RMS
//! *shrinks* with window length for totals-style windows only when its
//! per-epoch losses are unbiased — they are not (subtree losses only
//! subtract), so TAG stays biased-low at every length, while SD's
//! zero-mean sketch noise averages out and TD tracks the best of both;
//! bytes/epoch are flat in window length (panes are merged, never
//! recomputed — the whole point of the pane architecture).

use crate::report::{f, Table};
use crate::Scale;
use td_netsim::loss::Global;
use td_netsim::rng::substream;
use td_stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_workloads::synthetic::Synthetic;
use td_workloads::workload::DriftingStream;
use tributary_delta::driver::{Driver, TrialPool, Workload};
use tributary_delta::metrics::rms_error_series;
use tributary_delta::session::{Scheme, SessionBuilder};

/// One `(scheme, window)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct StreamRow {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Window length in panes.
    pub len: u32,
    /// Hop in panes (== `len` for tumbling windows).
    pub hop: u32,
    /// Window reports emitted over the measured run.
    pub reports: usize,
    /// RMS relative error of window answers vs the exact windowed truth.
    pub rms: f64,
    /// Mean payload bytes per epoch (cost is per-epoch, not per-window:
    /// panes are shared, windows merge them for free).
    pub bytes_per_epoch: f64,
    /// Mean contributor coverage across all panes.
    pub mean_coverage: f64,
}

/// The default `(len, hop)` grid: tumbling windows of growing length
/// plus sliding variants of the longest.
pub const WINDOWS: [(u32, u32); 6] = [(1, 1), (4, 4), (16, 16), (8, 1), (16, 1), (16, 4)];

fn one_scheme(scheme: Scheme, windows: &[(u32, u32)], scale: Scale, seed: u64) -> Vec<StreamRow> {
    let net = Synthetic::sized(scale.sensors).build(seed ^ 0x57EA);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, seed ^ 0xD21F), seed ^ 1);
    let model = Global::new(0.2);

    let mut topo_rng = substream(seed, 0xA0 + scheme.index());
    let session = scale
        .configure(SessionBuilder::new(scheme))
        .build(&net, &mut topo_rng);
    let mut stream = StreamSession::new(Driver::new(session, scale.warmup));
    // Every window config rides ONE query's pane series — the sweep
    // exercises the sharing it measures: one simulation per scheme,
    // however many window shapes are scored.
    let mut query = StreamQuery::scalar(td_aggregates::sum::Sum::default());
    for &(len, hop) in windows {
        let spec = if hop == len {
            WindowSpec::tumbling(len)
        } else {
            WindowSpec::sliding(len, hop)
        };
        query = query.window(spec, EpochMerge::Add);
    }
    let handles = stream.register(query);
    let mut rng = substream(seed, 0xB0 + scheme.index());
    let reports = stream.run(&workload, &model, scale.epochs, &mut rng);

    // Exact windowed truth from the workload itself: regenerate each
    // epoch's readings once, then answer every report's range from a
    // prefix-sum instead of re-deriving readings per overlapping window.
    let total_epochs = scale.warmup + scale.epochs;
    let mut prefix = vec![0.0f64; total_epochs as usize + 1];
    for epoch in 0..total_epochs {
        let truth = workload.readings(epoch)[1..].iter().sum::<u64>() as f64;
        prefix[epoch as usize + 1] = prefix[epoch as usize] + truth;
    }
    let truth_over = |start: u64, end: u64| prefix[end as usize + 1] - prefix[start as usize];
    let stats = stream.session().stats();
    let epochs_run = stream.stream_stats().epochs_run.max(1);
    let bytes_per_epoch = stats.total_bytes() as f64 / epochs_run as f64;
    let mean_coverage = stream.stream_stats().mean_pane_coverage();
    windows
        .iter()
        .zip(&handles)
        .map(|(&(len, hop), handle)| {
            let (estimates, actuals): (Vec<f64>, Vec<f64>) = reports
                .iter()
                .filter(|r| r.handle == *handle)
                .map(|r| (r.answer, truth_over(r.start_epoch, r.end_epoch)))
                .unzip();
            StreamRow {
                scheme: scheme.name(),
                len,
                hop,
                reports: estimates.len(),
                rms: rms_error_series(&estimates, &actuals),
                bytes_per_epoch,
                mean_coverage,
            }
        })
        .collect()
}

/// Run the sweep over `windows` for all four schemes, one flat
/// [`TrialPool`] cell per scheme (all window shapes share that cell's
/// single simulated stream).
pub fn run_windows(windows: &[(u32, u32)], scale: Scale, seed: u64) -> Vec<StreamRow> {
    let schemes = Scheme::all();
    TrialPool::new()
        .map(seed, &schemes, |_, &scheme, _rng| {
            one_scheme(scheme, windows, scale, seed)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// The full default sweep.
pub fn run(scale: Scale, seed: u64) -> Vec<StreamRow> {
    run_windows(&WINDOWS, scale, seed)
}

/// Render the sweep as a report table (`results/stream_windows.csv`).
pub fn table(rows: &[StreamRow]) -> Table {
    let mut t = Table::new(
        "Streaming windows: RMS + bytes vs window length/hop",
        &[
            "scheme",
            "window_len",
            "hop",
            "reports",
            "rms",
            "bytes_per_epoch",
            "mean_coverage",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            r.len.to_string(),
            r.hop.to_string(),
            r.reports.to_string(),
            f(r.rms),
            format!("{:.1}", r.bytes_per_epoch),
            f(r.mean_coverage),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_has_sane_shape() {
        let scale = Scale {
            runs: 1,
            epochs: 24,
            warmup: 10,
            sensors: 120,
            items_per_node: 0,
            workers: None,
        };
        let rows = run_windows(&[(1, 1), (8, 1)], scale, 4242);
        assert_eq!(rows.len(), Scheme::all().len() * 2);
        for r in &rows {
            assert!(r.reports > 0, "{} emitted nothing", r.scheme);
            assert!(r.rms.is_finite() && r.rms >= 0.0);
            assert!(r.bytes_per_epoch > 0.0);
            assert!(r.mean_coverage > 0.0 && r.mean_coverage <= 1.0);
        }
        // Pane sharing: every window shape of a scheme rides the same
        // single simulation, so bytes/epoch is identical per scheme.
        for scheme in Scheme::all() {
            let of_len = |len: u32| {
                rows.iter()
                    .find(|r| r.scheme == scheme.name() && r.len == len)
                    .unwrap()
                    .bytes_per_epoch
            };
            assert_eq!(
                of_len(1),
                of_len(8),
                "{}: window shapes did not share one traversal",
                scheme.name()
            );
        }
    }
}
