//! Figure 7: domination factors of our tree construction versus TAG
//! trees, across deployment density and shape, plus the LabData value.

use crate::report::Table;
use td_netsim::rng::substream;
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::domination::domination_factor;
use td_topology::rings::Rings;
use td_topology::tree::{build_tag_tree, ParentSelection};
use td_workloads::labdata::LabData;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::TrialPool;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct DominationPoint {
    /// The swept parameter (density or width).
    pub x: f64,
    /// Mean domination factor of the standard TAG tree.
    pub tag: f64,
    /// Mean domination factor of our construction (§6.1.3).
    pub ours: f64,
}

fn measure(spec: Synthetic, trials: u64, seed: u64) -> (f64, f64) {
    let mut tag_sum = 0.0;
    let mut ours_sum = 0.0;
    for t in 0..trials {
        // Sparse low-density deployments are often partly disconnected;
        // trees (and domination factors) are measured over the component
        // reachable from the base station, as in a real deployment.
        let net = spec.build_unchecked(seed ^ (t + 1));
        let mut rng = substream(seed, 0xF07 + t);
        // The standard construction allows same-level parents (§6.1.3).
        let tag = build_tag_tree(&net, ParentSelection::Random, None, true, &mut rng);
        let rings = Rings::build(&net);
        let ours = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        tag_sum += domination_factor(&tag, 0.05);
        ours_sum += domination_factor(&ours, 0.05);
    }
    (tag_sum / trials as f64, ours_sum / trials as f64)
}

/// Figure 7(a): density sweep over a 20×20 area (one trial-pool job per
/// density point).
pub fn density_sweep(trials: u64, seed: u64) -> Vec<DominationPoint> {
    let densities: Vec<f64> = (1..=8).map(|i| i as f64 * 0.2).collect();
    TrialPool::new().map(seed, &densities, |_, &density, _pool_rng| {
        let (tag, ours) = measure(Synthetic::with_density(density), trials, seed);
        DominationPoint {
            x: density,
            tag,
            ours,
        }
    })
}

/// Figure 7(b): width sweep at density 1 (height fixed at 20; one
/// trial-pool job per width point).
pub fn width_sweep(trials: u64, seed: u64) -> Vec<DominationPoint> {
    let widths: Vec<f64> = (1..=10).map(|i| i as f64 * 10.0).collect();
    TrialPool::new().map(seed, &widths, |_, &width, _pool_rng| {
        let (tag, ours) = measure(Synthetic::with_width(width), trials, seed);
        DominationPoint {
            x: width,
            tag,
            ours,
        }
    })
}

/// §7.4.1: the LabData deployment's domination factor (paper: 2.25).
/// The paper measures the factor of the *deployment's aggregation tree*;
/// we use the strict TAG construction (parents one hop closer), which is
/// what a settled, maintained tree looks like.
pub fn labdata_factor(trials: u64, seed: u64) -> (f64, f64) {
    let lab = LabData::new(seed);
    let mut tag_sum = 0.0;
    let mut ours_sum = 0.0;
    for t in 0..trials {
        let mut rng = substream(seed, 0x1AB + t);
        let tag = build_tag_tree(
            lab.network(),
            ParentSelection::Random,
            None,
            false,
            &mut rng,
        );
        let rings = Rings::build(lab.network());
        let ours = build_bushy_tree(lab.network(), &rings, BushyOptions::default(), &mut rng);
        tag_sum += domination_factor(&tag, 0.05);
        ours_sum += domination_factor(&ours, 0.05);
    }
    (tag_sum / trials as f64, ours_sum / trials as f64)
}

/// Render a sweep.
pub fn table(title: &str, x_name: &str, points: &[DominationPoint]) -> Table {
    let mut t = Table::new(title, &[x_name, "TAG Tree", "Our Tree", "improvement"]);
    for p in points {
        t.row(vec![
            format!("{:.1}", p.x),
            format!("{:.2}", p.tag),
            format!("{:.2}", p.ours),
            format!("{:+.2}", p.ours - p.tag),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_tree_improves_on_average() {
        let points = density_sweep(2, 5);
        let tag_mean: f64 = points.iter().map(|p| p.tag).sum::<f64>() / points.len() as f64;
        let ours_mean: f64 = points.iter().map(|p| p.ours).sum::<f64>() / points.len() as f64;
        assert!(
            ours_mean >= tag_mean,
            "our tree ({ours_mean:.2}) not better than TAG ({tag_mean:.2})"
        );
    }

    #[test]
    fn labdata_in_paper_band() {
        let (tag, ours) = labdata_factor(4, 7);
        assert!((1.6..=4.5).contains(&tag), "LabData TAG factor {tag}");
        assert!(ours >= tag - 0.3, "ours {ours} vs tag {tag}");
    }
}
