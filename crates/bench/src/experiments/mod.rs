//! The experiment implementations, one module per paper artifact.

pub mod ablation;
pub mod churn;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig09d;
pub mod fig_quantiles;
pub mod labdata_sum;
pub mod rms;
pub mod stream_windows;
pub mod tab01;
pub mod tab02;
