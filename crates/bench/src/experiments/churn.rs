//! The correlated-failure experiment (extension): accuracy and cost
//! under **burst loss × node churn**, across all four schemes.
//!
//! Every cell runs a drifting `SyntheticSum` stream at the *same*
//! long-run average loss (20%), but shapes the channel differently:
//! `burst_len = 1` is (rate-matched, near-i.i.d.) Bernoulli-style
//! noise, longer bursts concentrate the same loss into multi-epoch
//! Gilbert–Elliott blackouts ([`GilbertElliott::bursty`]) — the failure
//! shape real radios produce and i.i.d. sweeps can't. On top of that, a
//! seeded [`ChurnSchedule`] removes (and returns) nodes mid-run; the
//! session routes around each event as a bounded structural delta, so
//! the sweep also exercises — and reports — the plan cache's
//! patch-vs-recompile behaviour (`plan_patches` / `plan_compiles`).
//!
//! Expected shape: at equal average loss, longer bursts hurt every
//! scheme (whole windows of a subtree vanish at once, beyond what
//! multi-path redundancy inside one epoch can hide), with TAG worst —
//! a bursty uplink silences its whole subtree for the burst's length —
//! and adaptation (TD/TD-Coarse) recovering between bursts. Churn adds
//! a floor: an absent node's readings are unrecoverable, so coverage
//! (reported per cell) drops by roughly the stationary absence, while
//! re-routing keeps the *present* nodes flowing. The patch counters
//! should show churn absorbed almost entirely by `EpochPlan::patch`
//! for the ring-based schemes (TAG recompiles its label-free plan).
//!
//! [`GilbertElliott::bursty`]: td_netsim::loss::GilbertElliott::bursty
//! [`ChurnSchedule`]: td_netsim::churn::ChurnSchedule

use crate::report::{f, Table};
use crate::Scale;
use td_netsim::churn::ChurnSchedule;
use td_netsim::loss::GilbertElliott;
use td_netsim::rng::derive_seed;
use td_stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_workloads::synthetic::Synthetic;
use td_workloads::workload::DriftingStream;
use tributary_delta::driver::{Driver, TrialPool, Workload};
use tributary_delta::metrics::rms_error_series;
use tributary_delta::session::{Scheme, SessionBuilder};

/// The long-run average loss every cell is rate-matched to.
pub const MEAN_LOSS: f64 = 0.2;
/// Drop probability inside a Bad-state burst.
pub const BURST_P_BAD: f64 = 0.9;
/// Mean downtime of a churned node, in epochs.
pub const MEAN_DOWNTIME: f64 = 20.0;

/// The default burst-length axis (mean Bad-state sojourn, epochs);
/// 1 ≈ rate-matched per-epoch noise, 16 = multi-epoch blackouts.
pub const BURSTS: [f64; 3] = [1.0, 4.0, 16.0];
/// The default churn axis (per-node per-epoch leave probability).
pub const CHURN_RATES: [f64; 3] = [0.0, 0.002, 0.01];

/// One `(scheme, burst_len, churn_rate)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct ChurnRow {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Mean burst length in epochs (1 ≈ uncorrelated).
    pub burst_len: f64,
    /// Per-node per-epoch leave probability.
    pub churn_rate: f64,
    /// RMS relative error of per-epoch answers vs the all-node truth.
    pub rms: f64,
    /// Mean payload bytes per epoch.
    pub bytes_per_epoch: f64,
    /// Mean contributor coverage across panes.
    pub mean_coverage: f64,
    /// Churn departures over the measured run.
    pub nodes_left: u64,
    /// Churn arrivals over the measured run.
    pub nodes_joined: u64,
    /// Epoch-plan compiles the session's cache performed.
    pub plan_compiles: u64,
    /// In-place epoch-plan patches (adaptation relabels + churn
    /// reroutes absorbed without recompiling).
    pub plan_patches: u64,
}

/// One cell: a windowed Sum stream under burst loss and churn.
fn one_cell(scheme: Scheme, burst_len: f64, churn_rate: f64, scale: Scale, seed: u64) -> ChurnRow {
    let net = Synthetic::sized(scale.sensors).build(seed ^ 0xC193);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, seed ^ 0x5EED), seed ^ 2);
    let model = GilbertElliott::bursty(
        MEAN_LOSS,
        burst_len,
        BURST_P_BAD,
        derive_seed(seed, 0xB0057 ^ burst_len.to_bits()),
    );
    let churn = if churn_rate > 0.0 {
        ChurnSchedule::new(
            net.len(),
            churn_rate,
            MEAN_DOWNTIME,
            derive_seed(seed, 0xC40A ^ churn_rate.to_bits()),
        )
    } else {
        ChurnSchedule::disabled(net.len())
    };

    let mut topo_rng = td_netsim::rng::substream(seed, 0xA0 + scheme.index());
    let session = scale
        .configure(SessionBuilder::new(scheme))
        .build(&net, &mut topo_rng);
    let mut stream = StreamSession::new(Driver::new(session, scale.warmup));
    let handle = stream.register(
        StreamQuery::scalar(td_aggregates::sum::Sum::default())
            .window(WindowSpec::tumbling(1), EpochMerge::Add),
    )[0];
    let mut rng = td_netsim::rng::substream(seed, 0xB0 + scheme.index());
    let reports = stream.run_under_churn(&workload, &model, &churn, scale.epochs, &mut rng);

    let (estimates, actuals): (Vec<f64>, Vec<f64>) = reports
        .iter()
        .filter(|r| r.handle == handle)
        .map(|r| {
            let truth = workload.readings(r.start_epoch)[1..].iter().sum::<u64>() as f64;
            (r.answer, truth)
        })
        .unzip();
    let stats = stream.session().stats();
    let plan = stream.session().plan_stats();
    let epochs_run = stream.stream_stats().epochs_run.max(1);
    ChurnRow {
        scheme: scheme.name(),
        burst_len,
        churn_rate,
        rms: rms_error_series(&estimates, &actuals),
        bytes_per_epoch: stats.total_bytes() as f64 / epochs_run as f64,
        mean_coverage: stream.stream_stats().mean_pane_coverage(),
        nodes_left: stats.nodes_left(),
        nodes_joined: stats.nodes_joined(),
        plan_compiles: plan.compiles,
        plan_patches: plan.patches,
    }
}

/// Run the sweep over explicit axes, one [`TrialPool`] job per
/// `(scheme, burst, churn)` cell.
pub fn run_grid(bursts: &[f64], churn_rates: &[f64], scale: Scale, seed: u64) -> Vec<ChurnRow> {
    let mut cells = Vec::new();
    for &burst in bursts {
        for &rate in churn_rates {
            for scheme in Scheme::all() {
                cells.push((scheme, burst, rate));
            }
        }
    }
    TrialPool::new().map(seed, &cells, |_, &(scheme, burst, rate), _rng| {
        one_cell(scheme, burst, rate, scale, seed)
    })
}

/// The full default sweep (`BURSTS` × `CHURN_RATES` × all schemes).
pub fn run(scale: Scale, seed: u64) -> Vec<ChurnRow> {
    run_grid(&BURSTS, &CHURN_RATES, scale, seed)
}

/// Render the sweep as a report table (`results/churn.csv`).
pub fn table(rows: &[ChurnRow]) -> Table {
    let mut t = Table::new(
        "Correlated failures: RMS + cost vs burst length and churn rate",
        &[
            "scheme",
            "burst_len",
            "churn_rate",
            "rms",
            "bytes_per_epoch",
            "mean_coverage",
            "nodes_left",
            "nodes_joined",
            "plan_compiles",
            "plan_patches",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            format!("{:.0}", r.burst_len),
            format!("{}", r.churn_rate),
            f(r.rms),
            format!("{:.1}", r.bytes_per_epoch),
            f(r.mean_coverage),
            r.nodes_left.to_string(),
            r.nodes_joined.to_string(),
            r.plan_compiles.to_string(),
            r.plan_patches.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_has_sane_shape() {
        let scale = Scale {
            runs: 1,
            epochs: 30,
            warmup: 10,
            sensors: 120,
            items_per_node: 0,
            workers: None,
        };
        let rows = run_grid(&[1.0, 8.0], &[0.0, 0.01], scale, 0xC4A2);
        assert_eq!(rows.len(), Scheme::all().len() * 4);
        for r in &rows {
            assert!(r.rms.is_finite() && r.rms >= 0.0, "{r:?}");
            assert!(r.bytes_per_epoch > 0.0);
            assert!(r.mean_coverage > 0.0 && r.mean_coverage <= 1.0);
            if r.churn_rate == 0.0 {
                assert_eq!(r.nodes_left, 0, "churn fired in a churn-free cell");
            }
        }
        // Churn actually fired somewhere, and the ring-based schemes
        // absorbed it (plus adaptation) by patching, not recompiling.
        assert!(rows.iter().any(|r| r.churn_rate > 0.0 && r.nodes_left > 0));
        for r in rows.iter().filter(|r| r.scheme != "TAG") {
            if r.nodes_left > 0 {
                assert!(r.plan_patches > 0, "{}: churn never patched", r.scheme);
                assert!(
                    r.plan_patches > r.plan_compiles,
                    "{}: rebuilt more than patched: {r:?}",
                    r.scheme
                );
            }
        }
    }
}
