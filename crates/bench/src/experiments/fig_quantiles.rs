//! Quantile queries under the precision gradient (§6.1.4): rank error
//! versus communication, across aggregation schemes, summary families,
//! and loss shapes — `results/quantiles.csv`.
//!
//! The sweep crosses every scheme (TD, TD-Coarse, SD, TAG) with both
//! summary families (GK, q-digest), two rate-matched loss models
//! (Bernoulli `Global(p)` and a Gilbert–Elliott burst channel at the
//! same long-run rate), and two per-height budget allocations at the
//! same final ε: the paper's geometric `MinTotalLoad` gradient versus
//! the **uniform** per-level allocation `ε(k) = ε·k/H` (equal error
//! increments at every level — the min–max-load gradient, the same
//! baseline Figure 8 uses for frequent items).
//!
//! The headline ordering (the §6.1.4 claim lifted to the session
//! engine): on tree-bearing schemes, the precision gradient beats the
//! uniform allocation on bytes at matched final error. Compression at a
//! hop is paid by the error *increment* `ε(k) − ε(k−1)` times the
//! subtree population; the uniform split gives every level the same
//! sliver, too small to compress the numerous low-height messages where
//! the load actually is, while the geometric gradient front-loads its
//! increments exactly there (Lemma 3). SD is the control: its delta
//! floods exact per-origin parts, so the gradient can't matter.

use crate::report::Table;
use crate::Scale;
use td_netsim::loss::{GilbertElliott, Global, LossModel};
use td_netsim::network::Network;
use td_netsim::node::{Position, BASE_STATION};
use td_netsim::rng::substream;
use td_quantiles::gradient::{MinMaxLoad, MinTotalLoad, PrecisionGradient};
use td_quantiles::summary::QuantileSummary;
use td_quantiles::{GkSummary, QDigest};
use td_topology::domination::domination_factor;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::protocol::QuantileProtocol;
use tributary_delta::session::{Scheme, SessionBuilder};

/// Final rank-error tolerance ε at the base station. Coarse enough
/// that per-level budgets `⌊ε(k)·n⌋` are non-zero on interior subtrees
/// at bench scale — the regime where the allocations actually differ.
pub const EPS: f64 = 0.2;
/// q-digest domain width (`[0, 2^bits)`); readings stay inside it.
pub const QD_BITS: u32 = 16;
/// Long-run loss rate shared by both loss shapes.
pub const LOSS: f64 = 0.2;
/// Probe quantiles for the self-consistency error measure.
const PHIS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// One `(scheme, summary, loss, gradient)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct QuantileCell {
    /// Scheme name.
    pub scheme: &'static str,
    /// Summary family (`gk` / `qdigest`).
    pub summary: &'static str,
    /// Loss shape (`bernoulli` / `burst`).
    pub loss: &'static str,
    /// Budget allocation (`min_total_load` / `uniform`).
    pub gradient: &'static str,
    /// Mean payload bytes per epoch.
    pub bytes_per_epoch: f64,
    /// Mean self-reported error `E / n` of the final summary.
    pub self_eps: f64,
    /// Mean worst-probe self-consistency error
    /// `max_φ |rank(quantile(φ)) − ⌈φ·n⌉| / n`.
    pub observed_err: f64,
    /// Mean population of the final summary (readings that survived).
    pub population: f64,
}

/// The deployment: one reading per sensor, spread over the q-digest
/// domain so both families see the same stream.
fn readings(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 12_289 + 7) % 60_000).collect()
}

fn net(scale: Scale, seed: u64) -> Network {
    let mut rng = substream(seed, 0x9A);
    let side = (scale.sensors as f64).sqrt().max(10.0);
    Network::random_connected(
        scale.sensors,
        side,
        side,
        Position::new(side / 2.0, side / 2.0),
        2.5,
        &mut rng,
    )
}

/// Run one cell: `scale.runs` independent sessions, outputs averaged.
#[allow(clippy::too_many_arguments)]
fn run_cell<S, G, M>(
    net: &Network,
    values: &[u64],
    scheme: Scheme,
    template: &S,
    gradient: &G,
    model: &M,
    scale: Scale,
    seed: u64,
) -> (f64, f64, f64, f64)
where
    S: QuantileSummary,
    G: PrecisionGradient + Clone,
    M: LossModel,
{
    let (mut bytes, mut eps_sum, mut err_sum, mut pop_sum) = (0.0, 0.0, 0.0, 0.0);
    for run in 0..scale.runs {
        let mut rng = substream(seed, 0x0D1 + run);
        let session = scale
            .configure(SessionBuilder::new(scheme))
            .build(net, &mut rng);
        let mut driver = Driver::new(session, 0);
        let out = driver
            .run_protocol(
                |_| QuantileProtocol::new(template.clone(), gradient.clone(), values),
                model,
                scale.epochs,
                &mut rng,
            )
            .expect("ran at least one epoch");
        bytes += driver.session().stats().total_bytes() as f64 / scale.epochs as f64;
        let s = &out.summary;
        let n = s.population().max(1) as f64;
        eps_sum += s.uncertainty() as f64 / n;
        let worst = PHIS
            .iter()
            .filter_map(|&phi| {
                let q = s.quantile(phi)?;
                let target = (phi * n).ceil();
                Some((s.rank(q) as f64 - target).abs() / n)
            })
            .fold(0.0, f64::max);
        err_sum += worst;
        pop_sum += s.population() as f64;
    }
    let r = scale.runs as f64;
    (bytes / r, eps_sum / r, err_sum / r, pop_sum / r)
}

#[allow(clippy::too_many_arguments)]
fn run_family<G: PrecisionGradient + Clone, M: LossModel>(
    net: &Network,
    values: &[u64],
    scheme: Scheme,
    family: &'static str,
    gradient: &G,
    model: &M,
    scale: Scale,
    seed: u64,
) -> (f64, f64, f64, f64) {
    match family {
        "gk" => run_cell(
            net,
            values,
            scheme,
            &GkSummary::empty(),
            gradient,
            model,
            scale,
            seed,
        ),
        "qdigest" => run_cell(
            net,
            values,
            scheme,
            &QDigest::empty(QD_BITS),
            gradient,
            model,
            scale,
            seed,
        ),
        other => unreachable!("unknown summary family {other}"),
    }
}

/// Run the full sweep. Cells are independent, so they fan across the
/// trial pool; results come back in deterministic cell order.
pub fn run(scale: Scale, seed: u64) -> Vec<QuantileCell> {
    let net = net(scale, seed);
    let values = readings(net.len());
    // The domination factor and tree height for the gradients come from
    // a probe session's tree (SD has none; any sane pair is fine for
    // the control).
    let (d, height) = {
        let mut rng = substream(seed, 0xD0);
        let probe = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        match probe.topology() {
            Some(t) => {
                let tree = t.tree();
                let d = domination_factor(tree, 0.05).max(1.1);
                let h = tree.heights()[BASE_STATION.index()].max(1);
                (d, h)
            }
            None => (2.0, 4),
        }
    };

    let mut cells: Vec<(Scheme, &'static str, &'static str, &'static str)> = Vec::new();
    for scheme in Scheme::all() {
        for family in ["gk", "qdigest"] {
            for loss in ["bernoulli", "burst"] {
                for gradient in ["min_total_load", "uniform"] {
                    cells.push((scheme, family, loss, gradient));
                }
            }
        }
    }

    TrialPool::new().map(seed, &cells, |_, &(scheme, family, loss, gradient), _| {
        let model: Box<dyn LossModel> = match loss {
            "bernoulli" => Box::new(Global::new(LOSS)),
            _ => Box::new(GilbertElliott::bursty(LOSS, 4.0, 0.8, seed ^ 0xB0).per_link()),
        };
        let (bytes_per_epoch, self_eps, observed_err, population) = match gradient {
            "min_total_load" => run_family(
                &net,
                &values,
                scheme,
                family,
                &MinTotalLoad::new(EPS, d),
                &model,
                scale,
                seed,
            ),
            _ => run_family(
                &net,
                &values,
                scheme,
                family,
                &MinMaxLoad::new(EPS, height),
                &model,
                scale,
                seed,
            ),
        };
        QuantileCell {
            scheme: scheme.name(),
            summary: family,
            loss,
            gradient,
            bytes_per_epoch,
            self_eps,
            observed_err,
            population,
        }
    })
}

/// Render the sweep as the `quantiles.csv` table.
pub fn table(cells: &[QuantileCell]) -> Table {
    let mut t = Table::new(
        "Quantile queries: rank error vs bytes (schemes x families x loss x gradient)",
        &[
            "scheme",
            "summary",
            "loss",
            "gradient",
            "bytes_per_epoch",
            "self_eps",
            "observed_err",
            "population",
        ],
    );
    for c in cells {
        t.row(vec![
            c.scheme.to_string(),
            c.summary.to_string(),
            c.loss.to_string(),
            c.gradient.to_string(),
            format!("{:.1}", c.bytes_per_epoch),
            format!("{:.4}", c.self_eps),
            format!("{:.4}", c.observed_err),
            format!("{:.1}", c.population),
        ]);
    }
    t
}

/// The headline ordering: the precision gradient costs fewer bytes
/// than the uniform per-level allocation at the same final ε —
/// **strictly** on TAG (all-tree: every byte rides the tree the
/// gradient shapes) and for GK on the Tributary-Delta schemes, and
/// never worse anywhere. Strictness is not required of q-digest under
/// TD/TD-Coarse: their tributary trees are shallow (the delta floods
/// exact per-origin parts and dominates the bytes), and a q-digest's
/// cheapest merge costs path lift 2 — per-tuple GK slack compresses
/// under budgets a tributary-height q-digest cannot use. Returns the
/// violations (the bin asserts none).
pub fn ordering_violations(cells: &[QuantileCell]) -> Vec<String> {
    let mut out = Vec::new();
    let find = |scheme: &str, family: &str, loss: &str, gradient: &str| {
        cells
            .iter()
            .find(|c| {
                c.scheme == scheme
                    && c.summary == family
                    && c.loss == loss
                    && c.gradient == gradient
            })
            .expect("sweep covers the full grid")
    };
    for scheme in ["TD", "TD-Coarse", "TAG"] {
        for family in ["gk", "qdigest"] {
            for loss in ["bernoulli", "burst"] {
                let mtl = find(scheme, family, loss, "min_total_load");
                let uni = find(scheme, family, loss, "uniform");
                let strict = scheme == "TAG" || family == "gk";
                let violated = if strict {
                    mtl.bytes_per_epoch >= uni.bytes_per_epoch
                } else {
                    mtl.bytes_per_epoch > uni.bytes_per_epoch
                };
                if violated {
                    out.push(format!(
                        "{scheme}/{family}/{loss}: gradient {:.1} B/epoch {} uniform {:.1}",
                        mtl.bytes_per_epoch,
                        if strict { "!<" } else { "!<=" },
                        uni.bytes_per_epoch
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        // Full smoke-scale sensor count: the gradients only diverge
        // once interior budgets `⌊ε(k)·n⌋` clear zero, which needs
        // real subtree populations. Epochs stay short.
        Scale {
            runs: 1,
            epochs: 4,
            warmup: 0,
            sensors: 150,
            items_per_node: 0,
            workers: None,
        }
    }

    #[test]
    fn gradient_beats_uniform_on_tree_schemes() {
        let cells = run(tiny(), 11);
        assert_eq!(cells.len(), 32, "full grid");
        let violations = ordering_violations(&cells);
        assert!(violations.is_empty(), "{violations:?}");
        // Self-reported error stays within the configured tolerance
        // (combine adds uncertainties; reduce never exceeds budget).
        for c in &cells {
            assert!(
                c.self_eps <= EPS + 1e-9,
                "{}/{}/{}/{}: self eps {} above ε",
                c.scheme,
                c.summary,
                c.loss,
                c.gradient,
                c.self_eps
            );
            assert!(c.population > 0.0);
        }
    }
}
