//! Figure 9(d) (extension): **windowed** false negatives of the
//! frequent-items schemes vs loss rate.
//!
//! The paper's Figure 9 scores one-shot frequent-items queries; the
//! stream layer's set-valued panes ([`FreqPane`]) let the same §6
//! machinery answer "which items were frequent over the last W epochs"
//! — each epoch contributes one pane of per-item count estimates, a
//! sliding window merges them by multiset union, and the window-level
//! report applies §7.4.3's rule at window scope: report items whose
//! merged estimate exceeds `(s − ε)` of the window's *true* total (the
//! deployment knows its data volume, so loss-induced undercounting
//! shows up as false negatives, exactly as in the one-shot figure).
//!
//! The item distribution drifts across epochs (a stable heavy pair plus
//! a slot-rotating mid-weight item), so overlapping windows genuinely
//! mix distributions and the windowed truth differs from any single
//! epoch's. Expected shape: same ordering as Figure 9(a) — TAG's FN%
//! climbs steeply with loss, SD stays low, TD tracks the better of the
//! two — but softened, because a window of W panes averages W
//! independent loss draws.
//!
//! [`FreqPane`]: td_stream::FreqPane

use crate::experiments::fig09::FnPoint;
use crate::Scale;
use std::collections::BTreeMap;
use td_frequent::items::{true_frequent, ItemBag};
use td_frequent::multipath::MultipathConfig;
use td_netsim::loss::Global;
use td_netsim::rng::substream;
use td_quantiles::gradient::MinTotalLoad;
use td_sketches::counter::FmFactory;
use td_stream::{EpochMerge, FreqStreamQuery, StreamQuery, StreamSession, WindowSpec};
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings, TrialPool};
use tributary_delta::metrics::{false_negative_rate, false_positive_rate};
use tributary_delta::session::{Scheme, SessionBuilder};

/// Support threshold s. Higher than the one-shot figure's 1% so the
/// drifting mid-weight items sit near the threshold — the regime where
/// windowed undercounting actually flips report decisions.
pub const SUPPORT: f64 = 0.05;
/// Tree-side error budget ε_a (precision gradient).
const EPS_TREE: f64 = 0.01;
/// Multi-path error budget ε_b.
const EPS_MP: f64 = 0.01;
/// Sliding-window length in panes (hop 1).
pub const WINDOW: u32 = 4;
/// Distinct drifting epoch slots (epoch `e` replays slot `e % SLOTS`).
const SLOTS: usize = 3;

/// The drifting per-epoch item bags: every sensor carries a stable
/// heavy pair (items 1, 2), one slot-rotating mid-weight item
/// (`10 + slot`), and a per-node tail item. Node 0 is the base station
/// and holds nothing.
fn bags_table(nodes: usize) -> Vec<Vec<ItemBag>> {
    (0..SLOTS)
        .map(|s| {
            (0..nodes)
                .map(|i| {
                    if i == 0 {
                        ItemBag::new()
                    } else {
                        ItemBag::from_counts([
                            (1u64, 30),
                            (2u64, 18),
                            (10 + s as u64, 12),
                            (100 + i as u64 % 11, 4),
                        ])
                    }
                })
                .collect()
        })
        .collect()
}

/// The exact frequent set and total count over the epochs
/// `start..=end` (merging each epoch's true bags).
fn windowed_truth(bags: &[Vec<ItemBag>], start: u64, end: u64) -> (Vec<u64>, u64) {
    let merged: Vec<ItemBag> = (start..=end)
        .flat_map(|e| bags[e as usize % SLOTS].iter().cloned())
        .collect();
    let total = merged.iter().map(|b| b.total()).sum();
    (true_frequent(&merged, SUPPORT), total)
}

/// Mean windowed FN% / FP% for one `(scheme, loss)` cell, over
/// `scale.runs` independent streams. Only full windows are scored.
fn cell(scheme: Scheme, p: f64, scale: Scale, seed: u64) -> (f64, f64) {
    let net = Synthetic::sized(scale.sensors).build(seed ^ 0xF19D);
    let bags = bags_table(net.len());
    let n_slot_max = bags
        .iter()
        .map(|epoch| epoch.iter().map(|b| b.total()).sum::<u64>())
        .max()
        .expect("bag table is non-empty");
    let eps = EPS_TREE + EPS_MP;
    let (mut fn_sum, mut fp_sum, mut scored) = (0.0, 0.0, 0u64);
    for run in 0..scale.runs {
        let mut rng = substream(seed, 0x9D0 + run * 8 + scheme.index());
        let session = scale
            .configure(SessionBuilder::new(scheme))
            .build(&net, &mut rng);
        // Warm-up 0: report epochs index the bag table directly.
        let mut stream = StreamSession::new(Driver::new(session, 0));
        let query = StreamQuery::new(FreqStreamQuery::new(
            MultipathConfig::new(
                EPS_MP,
                2.0,
                n_slot_max * WINDOW as u64 * 2,
                FmFactory { bitmaps: 16 },
            ),
            MinTotalLoad::new(EPS_TREE, 2.25),
            SUPPORT,
            bags.clone(),
        ))
        .window(WindowSpec::sliding(WINDOW, 1), EpochMerge::Add);
        let _ = stream.register(query);
        let reports = stream.run(
            &FixedReadings(vec![1; net.len()]),
            &Global::new(p),
            scale.epochs,
            &mut rng,
        );
        for r in reports.iter().filter(|r| r.panes == r.expected_panes) {
            let freq = r.freq.as_ref().expect("freq panes carry estimates");
            let (truth, n_true) = windowed_truth(&bags, r.start_epoch, r.end_epoch);
            // §7.4.3's reporting rule at window scope: estimate above
            // `(s − ε)` of the window's true total.
            let threshold = (SUPPORT - eps) * n_true as f64;
            let reported: Vec<u64> = freq
                .counts()
                .iter()
                .filter(|&(_, &c)| c > threshold)
                .map(|(&u, _)| u)
                .collect();
            fn_sum += 100.0 * false_negative_rate(&reported, &truth);
            fp_sum += 100.0 * false_positive_rate(&reported, &truth);
            scored += 1;
        }
    }
    let n = scored.max(1) as f64;
    (fn_sum / n, fp_sum / n)
}

/// Run the windowed sweep: loss `p ∈ {0.0 … 0.9}` × {TAG, SD, TD},
/// one [`TrialPool`] cell per loss point. Reuses [`FnPoint`] (and thus
/// `fig09::table`) so the CSV shape matches the one-shot figures.
pub fn run(scale: Scale, seed: u64) -> Vec<FnPoint> {
    let ps: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();
    TrialPool::new().map(seed, &ps, |_, &p, _pool_rng| {
        let mut fn_pct = BTreeMap::new();
        let mut fp_pct = BTreeMap::new();
        for scheme in [Scheme::Tag, Scheme::Sd, Scheme::Td] {
            let (fnr, fpr) = cell(scheme, p, scale, seed);
            fn_pct.insert(scheme.name(), fnr);
            fp_pct.insert(scheme.name(), fpr);
        }
        FnPoint { p, fn_pct, fp_pct }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_windows_report_exactly() {
        let scale = Scale {
            runs: 1,
            epochs: 8,
            warmup: 0,
            sensors: 80,
            items_per_node: 0,
            workers: None,
        };
        let (fn_tag, fp_tag) = cell(Scheme::Tag, 0.0, scale, 7);
        assert_eq!(fn_tag, 0.0, "lossless windowed TAG missed frequent items");
        assert!(fp_tag.is_finite());
        let (fn_td, _) = cell(Scheme::Td, 0.0, scale, 7);
        assert!(
            fn_td <= 25.0,
            "lossless windowed TD FN {fn_td}% implausibly high"
        );
    }

    #[test]
    fn windowed_truth_mixes_drifting_slots() {
        let bags = bags_table(40);
        // A full window spans every slot, so each slot's rotating item
        // dilutes below the single-epoch support share.
        let (truth, total) = windowed_truth(&bags, 0, WINDOW as u64 - 1);
        assert!(total > 0);
        assert!(truth.contains(&1) && truth.contains(&2), "stable pair");
        let (single, _) = windowed_truth(&bags, 0, 0);
        assert!(single.contains(&10), "slot-0 item frequent in its epoch");
    }
}
