//! Figures 2 and 5: RMS error of Count/Sum versus message loss rate.
//!
//! Figure 2 is the 0–0.4 prefix of Figure 5(a) computed for Count;
//! Figure 5(a) sweeps `Global(p)` for Sum over `p ∈ [0, 1]` and Figure
//! 5(b) sweeps `Regional(p, 0.05)`. Four schemes everywhere: TAG, SD,
//! TD-Coarse, TD. Shape targets (EXPERIMENTS.md): TAG best at `p ≈ 0`,
//! crossing below SD at small `p`; SD flat near its ~12% approximation
//! error; TD/TD-Coarse at or below the best of the two at every rate,
//! with up to ~3× error reduction at realistic rates.

use crate::report::{f, Table};
use crate::Scale;
use std::collections::BTreeMap;
use td_netsim::loss::LossModel;
use td_netsim::network::Network;
use td_netsim::rng::substream;
use td_workloads::scenario;
use td_workloads::synthetic::Synthetic;
use tributary_delta::metrics::rms_error_series;
use tributary_delta::protocol::ScalarProtocol;
use tributary_delta::session::{Scheme, Session};

/// Which aggregate the sweep runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepAggregate {
    /// Count (Figure 2).
    Count,
    /// Sum (Figure 5).
    Sum,
}

/// Which failure model the sweep applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepFailure {
    /// `Global(p)`.
    Global,
    /// `Regional(p, 0.05)` over the paper's quadrant.
    Regional,
}

/// One sweep point: loss rate and per-scheme RMS error.
#[derive(Clone, Debug)]
pub struct RmsPoint {
    /// The swept loss rate `p`.
    pub p: f64,
    /// RMS error per scheme name.
    pub rms: BTreeMap<&'static str, f64>,
}

fn readings(agg: SweepAggregate, net: &Network, seed: u64, epoch: u64) -> Vec<u64> {
    match agg {
        SweepAggregate::Count => Synthetic::count_readings(net),
        SweepAggregate::Sum => Synthetic::sum_readings(net, seed, epoch),
    }
}

fn truth(agg: SweepAggregate, net: &Network, values: &[u64]) -> f64 {
    match agg {
        SweepAggregate::Count => net.num_sensors() as f64,
        SweepAggregate::Sum => values[1..].iter().sum::<u64>() as f64,
    }
}

/// RMS error of one scheme over `scale.epochs` measured epochs, averaged
/// over `scale.runs` seeds.
fn rms_one<M: LossModel>(
    agg: SweepAggregate,
    scheme: Scheme,
    model: &M,
    scale: Scale,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for run in 0..scale.runs {
        let net = Synthetic::sized(scale.sensors).build(seed ^ (run + 1));
        let mut topo_rng = substream(seed, 0xA0 + run);
        let mut session = Session::with_paper_defaults(scheme, &net, &mut topo_rng);
        let mut rng = substream(seed, 0xB0 + run);
        let mut estimates = Vec::with_capacity(scale.epochs as usize);
        let mut actuals = Vec::with_capacity(scale.epochs as usize);
        for epoch in 0..(scale.warmup + scale.epochs) {
            let values = readings(agg, &net, seed ^ run, epoch);
            let rec = match agg {
                SweepAggregate::Count => {
                    // Per-run salt: runs sample independent sketch draws.
                    let agg = td_aggregates::count::Count::default().with_salt(seed ^ (run * 7 + 1));
                    let proto = ScalarProtocol::new(agg, &values);
                    session.run_epoch(&proto, model, epoch, &mut rng)
                }
                SweepAggregate::Sum => {
                    let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), &values);
                    session.run_epoch(&proto, model, epoch, &mut rng)
                }
            };
            if epoch >= scale.warmup {
                estimates.push(rec.output);
                actuals.push(truth(agg, &net, &values));
            }
        }
        total += rms_error_series(&estimates, &actuals);
    }
    total / scale.runs as f64
}

/// Run the sweep across loss rates and all four schemes. Points are
/// computed in parallel (one thread per loss rate).
pub fn sweep(
    agg: SweepAggregate,
    failure: SweepFailure,
    ps: &[f64],
    scale: Scale,
    seed: u64,
) -> Vec<RmsPoint> {
    let mut out: Vec<Option<RmsPoint>> = vec![None; ps.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, &p) in ps.iter().enumerate() {
            handles.push((
                i,
                s.spawn(move || {
                    let spec = Synthetic::sized(scale.sensors);
                    let mut rms = BTreeMap::new();
                    for scheme in Scheme::all() {
                        let value = match failure {
                            SweepFailure::Global => {
                                rms_one(agg, scheme, &scenario::global(p), scale, seed)
                            }
                            SweepFailure::Regional => rms_one(
                                agg,
                                scheme,
                                &scenario::regional_for(spec.width, spec.height, p, 0.05),
                                scale,
                                seed,
                            ),
                        };
                        rms.insert(scheme.name(), value);
                    }
                    RmsPoint { p, rms }
                }),
            ));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("sweep worker panicked"));
        }
    });
    out.into_iter().map(|o| o.expect("filled")).collect()
}

/// Render a sweep as a report table.
pub fn table(title: &str, points: &[RmsPoint]) -> Table {
    let mut t = Table::new(title, &["loss_rate", "TAG", "SD", "TD-Coarse", "TD"]);
    for pt in points {
        t.row(vec![
            format!("{:.3}", pt.p),
            f(pt.rms["TAG"]),
            f(pt.rms["SD"]),
            f(pt.rms["TD-Coarse"]),
            f(pt.rms["TD"]),
        ]);
    }
    t
}

/// Figure 2: Count under `Global(p)`, `p ∈ {0, 0.05, …, 0.4}`.
pub fn figure2(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.05).collect();
    sweep(SweepAggregate::Count, SweepFailure::Global, &ps, scale, seed)
}

/// Figure 5(a): Sum under `Global(p)`, `p ∈ {0, 0.125, …, 1.0}`.
pub fn figure5a(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.125).collect();
    sweep(SweepAggregate::Sum, SweepFailure::Global, &ps, scale, seed)
}

/// Figure 5(b): Sum under `Regional(p, 0.05)`.
pub fn figure5b(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.125).collect();
    sweep(SweepAggregate::Sum, SweepFailure::Regional, &ps, scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke sweep checking the headline shape: at p = 0 TAG is
    /// (near-)exact while SD pays its approximation error; at high p TAG
    /// collapses while SD and TD hold up.
    #[test]
    fn shape_smoke() {
        let scale = Scale {
            runs: 1,
            epochs: 20,
            warmup: 60,
            sensors: 150,
            items_per_node: 0,
        };
        let points = sweep(
            SweepAggregate::Sum,
            SweepFailure::Global,
            &[0.0, 0.35],
            scale,
            77,
        );
        let p0 = &points[0].rms;
        assert!(p0["TAG"] < 0.02, "TAG at p=0 should be near-exact: {}", p0["TAG"]);
        assert!(
            p0["SD"] > 0.03 && p0["SD"] < 0.35,
            "SD approximation error out of band: {}",
            p0["SD"]
        );
        let p35 = &points[1].rms;
        assert!(
            p35["TAG"] > 2.0 * p35["SD"],
            "tree should collapse vs multi-path at p=0.35: TAG {} SD {}",
            p35["TAG"],
            p35["SD"]
        );
        let best = p35["TAG"].min(p35["SD"]);
        assert!(
            p35["TD"] <= best * 1.35,
            "TD {} should track the best baseline {best}",
            p35["TD"]
        );
    }
}
