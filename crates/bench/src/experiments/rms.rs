//! Figures 2 and 5: RMS error of Count/Sum versus message loss rate.
//!
//! Figure 2 is the 0–0.4 prefix of Figure 5(a) computed for Count;
//! Figure 5(a) sweeps `Global(p)` for Sum over `p ∈ [0, 1]` and Figure
//! 5(b) sweeps `Regional(p, 0.05)`. Four schemes everywhere: TAG, SD,
//! TD-Coarse, TD. Shape targets (EXPERIMENTS.md): TAG best at `p ≈ 0`,
//! crossing below SD at small `p`; SD flat near its ~12% approximation
//! error; TD/TD-Coarse at or below the best of the two at every rate,
//! with up to ~3× error reduction at realistic rates.

use crate::report::{f, Table};
use crate::Scale;
use std::collections::BTreeMap;
use td_netsim::loss::LossModel;
use td_netsim::rng::substream;
use td_workloads::scenario;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::metrics::rms_error_series;
use tributary_delta::session::{Scheme, SessionBuilder};

/// Which aggregate the sweep runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepAggregate {
    /// Count (Figure 2).
    Count,
    /// Sum (Figure 5).
    Sum,
}

/// Which failure model the sweep applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepFailure {
    /// `Global(p)`.
    Global,
    /// `Regional(p, 0.05)` over the paper's quadrant.
    Regional,
}

/// One sweep point: loss rate and per-scheme RMS error.
#[derive(Clone, Debug)]
pub struct RmsPoint {
    /// The swept loss rate `p`.
    pub p: f64,
    /// RMS error per scheme name.
    pub rms: BTreeMap<&'static str, f64>,
}

/// RMS error of one scheme over `scale.epochs` measured epochs, averaged
/// over `scale.runs` seeds. Each run is one [`Driver`] pass: the driver
/// owns the warmup/measure loop the experiments used to hand-roll.
fn rms_one<M: LossModel>(
    agg: SweepAggregate,
    scheme: Scheme,
    model: &M,
    scale: Scale,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for run in 0..scale.runs {
        let net = Synthetic::sized(scale.sensors).build(seed ^ (run + 1));
        let mut topo_rng = substream(seed, 0xA0 + run);
        let session = scale
            .configure(SessionBuilder::new(scheme))
            .build(&net, &mut topo_rng);
        let mut driver = Driver::new(session, scale.warmup);
        let mut rng = substream(seed, 0xB0 + run);
        let result = match agg {
            SweepAggregate::Count => driver.run_scalar(
                // Per-run salt: runs sample independent sketch draws.
                &td_aggregates::count::Count::default().with_salt(seed ^ (run * 7 + 1)),
                &Synthetic::count_workload(&net),
                model,
                scale.epochs,
                |_| net.num_sensors() as f64,
                &mut rng,
            ),
            SweepAggregate::Sum => driver.run_scalar(
                &td_aggregates::sum::Sum::default(),
                &Synthetic::sum_workload(&net, seed ^ run),
                model,
                scale.epochs,
                |readings| readings[1..].iter().sum::<u64>() as f64,
                &mut rng,
            ),
        };
        total += rms_error_series(&result.estimates, &result.actuals);
    }
    total / scale.runs as f64
}

/// Run the sweep across loss rates and all four schemes. Every
/// `(loss rate, scheme)` cell is an independent trial fanned across one
/// flat [`TrialPool`], so the sweep load-balances instead of
/// serializing all four schemes behind each loss rate.
pub fn sweep(
    agg: SweepAggregate,
    failure: SweepFailure,
    ps: &[f64],
    scale: Scale,
    seed: u64,
) -> Vec<RmsPoint> {
    let cells: Vec<(f64, Scheme)> = ps
        .iter()
        .flat_map(|&p| Scheme::all().into_iter().map(move |s| (p, s)))
        .collect();
    let values = TrialPool::new().map(seed, &cells, |_, &(p, scheme), _pool_rng| {
        let spec = Synthetic::sized(scale.sensors);
        match failure {
            SweepFailure::Global => rms_one(agg, scheme, &scenario::global(p), scale, seed),
            SweepFailure::Regional => rms_one(
                agg,
                scheme,
                &scenario::regional_for(spec.width, spec.height, p, 0.05),
                scale,
                seed,
            ),
        }
    });
    ps.iter()
        .zip(values.chunks(Scheme::all().len()))
        .map(|(&p, chunk)| {
            let mut rms = BTreeMap::new();
            for (scheme, &value) in Scheme::all().into_iter().zip(chunk) {
                rms.insert(scheme.name(), value);
            }
            RmsPoint { p, rms }
        })
        .collect()
}

/// Render a sweep as a report table.
pub fn table(title: &str, points: &[RmsPoint]) -> Table {
    let mut t = Table::new(title, &["loss_rate", "TAG", "SD", "TD-Coarse", "TD"]);
    for pt in points {
        t.row(vec![
            format!("{:.3}", pt.p),
            f(pt.rms["TAG"]),
            f(pt.rms["SD"]),
            f(pt.rms["TD-Coarse"]),
            f(pt.rms["TD"]),
        ]);
    }
    t
}

/// Figure 2: Count under `Global(p)`, `p ∈ {0, 0.05, …, 0.4}`.
pub fn figure2(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.05).collect();
    sweep(
        SweepAggregate::Count,
        SweepFailure::Global,
        &ps,
        scale,
        seed,
    )
}

/// Figure 5(a): Sum under `Global(p)`, `p ∈ {0, 0.125, …, 1.0}`.
pub fn figure5a(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.125).collect();
    sweep(SweepAggregate::Sum, SweepFailure::Global, &ps, scale, seed)
}

/// Figure 5(b): Sum under `Regional(p, 0.05)`.
pub fn figure5b(scale: Scale, seed: u64) -> Vec<RmsPoint> {
    let ps: Vec<f64> = (0..=8).map(|i| i as f64 * 0.125).collect();
    sweep(
        SweepAggregate::Sum,
        SweepFailure::Regional,
        &ps,
        scale,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke sweep checking the headline shape: at p = 0 TAG is
    /// (near-)exact while SD pays its approximation error; at high p TAG
    /// collapses while SD and TD hold up.
    #[test]
    fn shape_smoke() {
        let scale = Scale {
            runs: 1,
            epochs: 20,
            warmup: 60,
            sensors: 150,
            items_per_node: 0,
            workers: None,
        };
        let points = sweep(
            SweepAggregate::Sum,
            SweepFailure::Global,
            &[0.0, 0.35],
            scale,
            77,
        );
        let p0 = &points[0].rms;
        assert!(
            p0["TAG"] < 0.02,
            "TAG at p=0 should be near-exact: {}",
            p0["TAG"]
        );
        assert!(
            p0["SD"] > 0.03 && p0["SD"] < 0.35,
            "SD approximation error out of band: {}",
            p0["SD"]
        );
        let p35 = &points[1].rms;
        assert!(
            p35["TAG"] > 2.0 * p35["SD"],
            "tree should collapse vs multi-path at p=0.35: TAG {} SD {}",
            p35["TAG"],
            p35["SD"]
        );
        let best = p35["TAG"].min(p35["SD"]);
        assert!(
            p35["TD"] <= best * 1.35,
            "TD {} should track the best baseline {best}",
            p35["TD"]
        );
    }
}
