//! Table 2: the 2-dominating example tree `Te` versus the regular binary
//! tree `T2` — height counts `h(i)`, cumulative fractions `H(i)`, and
//! domination factors.

use crate::report::Table;
use td_topology::domination::DominationProfile;

/// The paper's example tree `Te`: `h = (37, 10, 6, 1)`, `m = 54`.
pub fn te() -> DominationProfile {
    DominationProfile::from_height_counts(vec![37, 10, 6, 1])
}

/// The regular binary comparison tree `T2`: `h = (8, 4, 2, 1)`, `m = 15`.
pub fn t2() -> DominationProfile {
    DominationProfile::from_height_counts(vec![8, 4, 2, 1])
}

/// Render the table alongside the domination checks.
pub fn table() -> Table {
    let te = te();
    let t2 = t2();
    let mut t = Table::new(
        "Table 2: example of a 2-dominating tree",
        &[
            "i",
            "Te_h(i)",
            "Te_H(i)",
            "T2_h(i)",
            "T2_H(i)",
            "bound_1-2^-i",
        ],
    );
    for i in 1..=4usize {
        t.row(vec![
            i.to_string(),
            te.h(i).to_string(),
            format!("{:.4}", te.cumulative(i)),
            t2.h(i).to_string(),
            format!("{:.4}", t2.cumulative(i)),
            format!("{:.4}", 1.0 - 2f64.powi(-(i as i32))),
        ]);
    }
    t
}

/// Summary line: domination verdicts.
pub fn summary() -> String {
    let te = te();
    let t2 = t2();
    format!(
        "Te: m={}, 2-dominating={}, grid factor={:.2} | T2: 2-dominating={}, grid factor={:.2}\n\
         (Paper claims Te is 2-dominating because H(i) of Te >= H(i) of T2 at every i;\n\
         under the formal Definition, Te's exact factor is {:.2} — see EXPERIMENTS.md\n\
         for the note on the paper's 2.05 parenthetical.)",
        te.num_nodes(),
        te.is_d_dominating(2.0),
        te.domination_factor(0.05),
        t2.is_d_dominating(2.0),
        t2.domination_factor(0.05),
        te.exact_domination_factor(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn te_dominates_t2_pointwise_and_both_2_dominating() {
        let te = te();
        let t2 = t2();
        for i in 1..=4 {
            assert!(te.cumulative(i) >= t2.cumulative(i) - 1e-12);
        }
        assert!(te.is_d_dominating(2.0));
        assert!(t2.is_d_dominating(2.0));
    }

    #[test]
    fn table_has_four_rows() {
        assert_eq!(table().len(), 4);
    }
}
