//! Table 1, quantified: energy (messages, bytes) and error (communication
//! vs approximation) per scheme, for Count and for Frequent Items.
//!
//! The paper's Table 1 is qualitative ("minimal / small / very large…");
//! this regenerator measures the quantities behind it at a representative
//! realistic loss rate (p = 0.15) and at p = 0 (isolating approximation
//! error from communication error).

use crate::report::{f, Table};
use crate::Scale;
use td_frequent::items::true_frequent;
use td_frequent::multipath::{run_rings, MultipathConfig};
use td_frequent::tree::{run_tree, TreeFrequentConfig};
use td_netsim::loss::Global;
use td_netsim::rng::substream;
use td_sketches::counter::FmFactory;
use td_topology::rings::Rings;
use td_topology::tree::{build_tag_tree, ParentSelection};
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::metrics::{false_negative_rate, rms_error_series};
use tributary_delta::session::{Scheme, SessionBuilder};

/// One measured row.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// End-to-end answer latency (ms) for the Count query: slot time ×
    /// ring/tree depth, with the scheme's widest partial result and
    /// retransmission setting (netsim's latency model; Table 1's
    /// "Latency" column).
    pub count_latency_ms: f64,
    /// Mean messages per sensor per epoch (Count query).
    pub count_msgs_per_node: f64,
    /// Mean payload bytes per sensor per epoch (Count query).
    pub count_bytes_per_node: f64,
    /// Count: total error at p = 0.15 (communication + approximation).
    pub count_err_lossy: f64,
    /// Count: error at p = 0 (approximation alone).
    pub count_err_lossless: f64,
    /// Frequent items: false-negative rate at p = 0.15.
    pub freq_fn_lossy: f64,
    /// Frequent items: mean messages per sensor (one aggregation).
    pub freq_msgs_per_node: f64,
}

fn count_metrics(scheme: Scheme, p: f64, scale: Scale, seed: u64) -> (f64, f64, f64, f64) {
    let net = Synthetic::sized(scale.sensors).build(seed);
    let model = Global::new(p);
    let mut rng = substream(seed, 0x7AB1);
    let session = scale
        .configure(SessionBuilder::new(scheme))
        .build(&net, &mut rng);
    let mut driver = Driver::new(session, scale.warmup);
    let result = driver.run_scalar(
        &td_aggregates::count::Count::default(),
        &Synthetic::count_workload(&net),
        &model,
        scale.epochs,
        |_| net.num_sensors() as f64,
        &mut rng,
    );
    let session = driver.into_session();
    let epochs_total = (scale.warmup + scale.epochs) as f64;
    let msgs = session.stats().total_messages() as f64 / net.num_sensors() as f64 / epochs_total;
    let bytes = session.stats().total_bytes() as f64 / net.num_sensors() as f64 / epochs_total;
    // Latency: slot width from the scheme's mean messages per node per
    // epoch (rounded up), depth from the topology actually in use.
    let depth = match scheme {
        Scheme::Tag => session
            .tag_tree()
            .map(|t| t.max_depth())
            .unwrap_or_default(),
        _ => session
            .topology()
            .map(|t| t.rings().max_level())
            .unwrap_or_default(),
    };
    let latency = td_netsim::epoch::LatencyModel {
        timing: td_netsim::epoch::SlotTiming::default(),
        messages_per_slot: msgs.ceil().max(1.0) as u32,
        retransmissions: 0,
    }
    .epoch_latency_ms(depth);
    (
        rms_error_series(&result.estimates, &result.actuals),
        msgs,
        bytes,
        latency,
    )
}

fn freq_metrics(scheme: Scheme, p: f64, scale: Scale, seed: u64) -> (f64, f64) {
    // §7.4.3 compares message costs on the LabData streams ("3 times on
    // average"); skewed bucketized readings keep synopses realistic.
    let lab = td_workloads::labdata::LabData::new(seed);
    let net = lab.network().clone();
    let bags = td_workloads::items::labdata_bags(&lab, scale.items_per_node as u64);
    let truth = true_frequent(&bags, 0.01);
    let n_total: u64 = bags.iter().map(|b| b.total()).sum();
    let eps = 0.001;
    let mut rng = substream(seed, 0x7AB2);
    match scheme {
        Scheme::Tag => {
            let tree = build_tag_tree(&net, ParentSelection::Random, None, false, &mut rng);
            let res = run_tree(
                &net,
                &tree,
                &TreeFrequentConfig::new(eps),
                &bags,
                &Global::new(p),
                0,
                &mut rng,
            );
            let reported = res.summary.report_frequent(0.01);
            (
                false_negative_rate(&reported, &truth),
                res.stats.total_messages() as f64 / net.num_sensors() as f64,
            )
        }
        _ => {
            let rings = Rings::build(&net);
            let cfg = MultipathConfig::new(eps, 2.0, n_total * 2, FmFactory { bitmaps: 16 });
            let res = run_rings(&net, &rings, &cfg, &bags, &Global::new(p), 0, &mut rng);
            let reported = res.estimates.report(0.01 - eps);
            (
                false_negative_rate(&reported, &truth),
                res.stats.total_messages() as f64 / net.num_sensors() as f64,
            )
        }
    }
}

/// Measure all schemes (one trial-pool job per scheme).
pub fn run(scale: Scale, seed: u64) -> Vec<ComparisonRow> {
    TrialPool::new().map(seed, &Scheme::all(), |_, &scheme, _pool_rng| {
        let (err_lossy, msgs, bytes, latency) = count_metrics(scheme, 0.15, scale, seed);
        let (err_lossless, _, _, _) = count_metrics(scheme, 0.0, scale, seed ^ 0x11);
        // Frequent items: TD variants share SD's multi-path costs in
        // this summary (their delta dominates under loss); TAG is the
        // tree column.
        let (freq_fn, freq_msgs) = freq_metrics(scheme, 0.15, scale, seed);
        ComparisonRow {
            scheme: scheme.name(),
            count_latency_ms: latency,
            count_msgs_per_node: msgs,
            count_bytes_per_node: bytes,
            count_err_lossy: err_lossy,
            count_err_lossless: err_lossless,
            freq_fn_lossy: freq_fn,
            freq_msgs_per_node: freq_msgs,
        }
    })
}

/// Render the comparison.
pub fn table(rows: &[ComparisonRow]) -> Table {
    let mut t = Table::new(
        "Table 1 (quantified): energy and error components, Global(0.15)",
        &[
            "scheme",
            "count_msgs/node/epoch",
            "count_bytes/node/epoch",
            "count_latency_ms",
            "count_rms@0.15",
            "count_rms@0 (approx err)",
            "freq_FN@0.15",
            "freq_msgs/node",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.to_string(),
            format!("{:.2}", r.count_msgs_per_node),
            format!("{:.1}", r.count_bytes_per_node),
            format!("{:.0}", r.count_latency_ms),
            f(r.count_err_lossy),
            f(r.count_err_lossless),
            f(r.freq_fn_lossy),
            format!("{:.2}", r.freq_msgs_per_node),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_claims_hold_at_smoke_scale() {
        let scale = Scale {
            runs: 1,
            epochs: 20,
            warmup: 60,
            sensors: 150,
            items_per_node: 100,
            workers: None,
        };
        let rows = run(scale, 17);
        let get = |n: &str| rows.iter().find(|r| r.scheme == n).unwrap().clone();
        let tag = get("TAG");
        let sd = get("SD");
        let td = get("TD");
        // Tree: no approximation error. (SD's lossless Count error is a
        // single deterministic sketch draw for the fixed node population,
        // so its magnitude is not asserted — only that the tree is exact.)
        assert!(tag.count_err_lossless < 0.02);
        // Tree: very large communication error under loss.
        assert!(tag.count_err_lossy > sd.count_err_lossy);
        // TD avoids the tree's collapse. (Comparing TD against SD's
        // absolute error is fragile at smoke scale: with a fixed node
        // population, each scheme's Count error is a single sketch draw.)
        assert!(
            td.count_err_lossy < tag.count_err_lossy,
            "TD {} vs TAG {}",
            td.count_err_lossy,
            tag.count_err_lossy
        );
        assert!(td.count_err_lossy < 0.4, "TD error {}", td.count_err_lossy);
        // Everybody sends ~1 message per node per epoch for Count, and
        // latency stays within the same order of magnitude across schemes
        // (Table 1: "minimal" for all).
        for r in &rows {
            assert!(
                r.count_msgs_per_node < 2.5,
                "{}: {} msgs",
                r.scheme,
                r.count_msgs_per_node
            );
            assert!(
                r.count_latency_ms > 0.0 && r.count_latency_ms < 2000.0,
                "{}: latency {} ms",
                r.scheme,
                r.count_latency_ms
            );
        }
        // Frequent items cost more messages in multi-path than tree.
        assert!(sd.freq_msgs_per_node > tag.freq_msgs_per_node);
    }
}
