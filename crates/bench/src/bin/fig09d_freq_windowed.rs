//! Regenerates Figure 9(d) (extension): **windowed** false negatives of
//! the frequent-items schemes under `Global(p)` — set-valued panes
//! merged over a sliding window, scored against the exact windowed
//! frequent set (`results/fig09d_false_negatives_windowed.csv`).

use td_bench::experiments::{fig09, fig09d};
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    println!(
        "Figure 9(d) — windowed frequent-items false negatives \
         (sliding({},1), s={}, sensors={}, epochs={}, runs={})",
        fig09d::WINDOW,
        fig09d::SUPPORT,
        scale.sensors,
        scale.epochs,
        scale.runs
    );
    let t0 = std::time::Instant::now();
    let points = fig09d::run(scale, 0xF1609D);
    let t = fig09::table(
        "Figure 9(d): windowed false negatives, sliding window of panes",
        &points,
    );
    t.print();
    match t.write_csv("fig09d_false_negatives_windowed") {
        Some(path) => println!("wrote {}", path.display()),
        None => std::process::exit(1),
    }
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
