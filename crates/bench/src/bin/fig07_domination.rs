//! Regenerates Figure 7: domination factors of our tree construction vs
//! TAG trees, by deployment density (a) and deployment width (b), plus
//! the LabData factor of §7.4.1.

use td_bench::experiments::fig07;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    let trials = (scale.runs * 3).max(3);
    println!("Figure 7 — domination factors ({trials} trials per point)");
    let a = fig07::density_sweep(trials, 0xF1607A);
    let ta = fig07::table(
        "Figure 7(a): domination factor vs density (20x20 area)",
        "density",
        &a,
    );
    ta.print();
    ta.write_csv("fig07a_density");

    let b = fig07::width_sweep(trials, 0xF1607B);
    let tb = fig07::table(
        "Figure 7(b): domination factor vs deployment width (height 20, density 1)",
        "width",
        &b,
    );
    tb.print();
    tb.write_csv("fig07b_width");

    let (lab_tag, lab_ours) = fig07::labdata_factor(trials, 0xF1607C);
    println!(
        "\nLabData (§7.4.1): TAG tree {:.2}, our tree {:.2} (paper: 2.25)",
        lab_tag, lab_ours
    );
    println!(
        "paper shape: our construction lifts the factor everywhere, most\n\
         visibly at low density and narrow deployments"
    );
}
