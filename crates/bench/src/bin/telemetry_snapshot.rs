//! Telemetry smoke + exporter: drives a scenario that touches every
//! epoch-lifecycle phase — plan **compile**, churn-driven **patch**,
//! **randomness** pre-draw (parallel path), per-level **execute**,
//! **merge**, stream **window fold**, and service **outbox drain** —
//! then exports the merged metric snapshot as
//! `results/telemetry_snapshot.json`, a Prometheus-text dump
//! (`telemetry_snapshot.prom`), and the buffered structured events as
//! JSONL (`telemetry_events.jsonl`).
//!
//! With telemetry compiled in (the default) it **asserts** that every
//! phase histogram is populated and the event ring is non-empty, so CI
//! can run this binary as the observability smoke test. Built with
//! `--no-default-features` it still writes the files — marked
//! `"telemetry_compiled": false`, with no phase histograms — proving
//! the export path itself needs no feature gates.

use td_bench::json::write_results_text;
use td_netsim::churn::ChurnSchedule;
use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_service::{ServiceRuntime, Tenant, TenantPhase};
use td_stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_telemetry::phase::Phase;
use td_telemetry::{events, Level, Snapshot};
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings};
use tributary_delta::session::{Scheme, SessionBuilder};

const SENSORS: usize = 300;
const WARMUP: u64 = 2;
const EPOCHS: u64 = 30;

/// Stream scenario: a TD session big enough for the level-parallel
/// executor (workers = 2, floor lowered to 64 nodes) so the randomness
/// pre-draw runs, with churn injected every few epochs so the plan
/// patch path runs, all behind a windowed stream query so panes fold.
fn run_stream_scenario() {
    let net = Synthetic::small(SENSORS).build(3);
    let mut rng = rng_from_seed(0x7E1E);
    let session = SessionBuilder::new(Scheme::Td)
        .workers(2)
        .parallel_min_nodes(64)
        .build(&net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, WARMUP));
    let _ = stream.register(
        StreamQuery::scalar(td_aggregates::sum::Sum::default())
            .window(WindowSpec::sliding(4, 1), EpochMerge::Add),
    );
    let readings: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 50).collect();
    let workload = FixedReadings(readings);
    let model = Global::new(0.1);
    let churn = ChurnSchedule::new(net.len(), 0.02, 5.0, 9);
    let mut reports = 0usize;
    for _ in 0..WARMUP + EPOCHS {
        let epoch = stream.driver().next_epoch();
        if epoch > WARMUP && epoch.is_multiple_of(5) {
            stream.inject_churn(&churn.events_at(epoch));
        }
        reports += stream.step(&workload, &model, &mut rng).len();
    }
    println!(
        "stream scenario: {} epochs, {reports} reports, comm {}",
        WARMUP + EPOCHS,
        stream.session().stats()
    );
}

/// Service scenario: a few tenants multiplexed on a two-worker runtime
/// and drained to their pause — the outbox-drain phase plus the
/// `service.*` counters. Returns the runtime's registry snapshot.
fn run_service_scenario() -> Snapshot {
    let runtime = ServiceRuntime::new(2);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let net = Synthetic::small(30).build(0xBE5E ^ i);
            let mut rng = rng_from_seed(0xCAFE ^ i);
            let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
            let mut stream = StreamSession::new(Driver::new(session, WARMUP));
            let _ = stream.register(
                StreamQuery::scalar(td_aggregates::sum::Sum::default())
                    .window(WindowSpec::sliding(4, 1), EpochMerge::Add),
            );
            let readings = vec![1 + i % 50; net.len()];
            let tenant = Tenant::builder(stream, FixedReadings(readings), Global::new(0.05))
                .seed(i)
                .run_until(WARMUP + 10)
                .outbox_capacity(16)
                .build();
            runtime.submit(tenant)
        })
        .collect();
    let mut drained = 0usize;
    let mut done = vec![false; handles.len()];
    let mut remaining = handles.len();
    while remaining > 0 {
        for (h, finished) in handles.iter().zip(&mut done) {
            if *finished {
                continue;
            }
            drained += h.drain(8).len();
            let st = h.status();
            if st.phase == TenantPhase::Paused && st.queued_reports == 0 {
                *finished = true;
                remaining -= 1;
            }
        }
        std::thread::yield_now();
    }
    let service_snapshot = runtime.telemetry().snapshot();
    let stats = runtime.shutdown();
    println!("service scenario: drained {drained} reports; {stats}");
    service_snapshot
}

fn main() {
    // Populate the event ring too (epoch, adapter, and service events),
    // without the stderr echo drowning the run.
    events::set_echo(false);
    events::set_level(Some(Level::Debug));

    run_stream_scenario();
    let service_snapshot = run_service_scenario();

    // One merged view: the process-global registry (phase histograms)
    // folded with the service runtime's own registry (service.*
    // counters). Snapshot merge is associative/commutative, so the
    // order is immaterial.
    let mut snap = td_telemetry::global().snapshot();
    snap.merge(&service_snapshot);

    write_results_text("telemetry_snapshot.json", &snap.to_json());
    write_results_text("telemetry_snapshot.prom", &snap.to_prometheus());
    let mut jsonl = Vec::new();
    let exported = events::export_jsonl(&mut jsonl).expect("in-memory write");
    write_results_text(
        "telemetry_events.jsonl",
        &String::from_utf8(jsonl).expect("events are utf-8"),
    );
    println!("exported {exported} structured events");

    if td_telemetry::compiled() {
        for p in Phase::ALL {
            let hist = snap
                .histogram(p.metric_name())
                .unwrap_or_else(|| panic!("phase histogram {} missing", p.metric_name()));
            assert!(
                !hist.is_empty(),
                "phase histogram {} is empty — the scenario no longer reaches it",
                p.metric_name()
            );
            println!(
                "  {}: n={} p50={:.0}ns p99={:.0}ns",
                p.metric_name(),
                hist.count(),
                hist.quantile(0.50),
                hist.quantile(0.99)
            );
        }
        assert!(
            snap.counter("service.epochs_driven") > 0,
            "service counters missing from the merged snapshot"
        );
        assert!(exported > 0, "event ring is empty at Debug level");
        println!(
            "telemetry smoke OK: all {} phases populated",
            Phase::ALL.len()
        );
    } else {
        assert!(
            snap.histograms.is_empty(),
            "no-telemetry build recorded phase histograms"
        );
        println!("telemetry compiled out: exported marker snapshot only");
    }
}
