//! Regenerates Figure 9: % false negatives of the frequent-items schemes
//! under Global(p) on LabData streams — (a) without and (b) with two
//! tree retransmissions.

use td_bench::experiments::fig09;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 9 — frequent-items false negatives (items/node={}, runs={})",
        scale.items_per_node, scale.runs
    );
    let a = fig09::run(0, scale, 0xF1609A);
    let ta = fig09::table("Figure 9(a): false negatives, no retransmission", &a);
    ta.print();
    ta.write_csv("fig09a_false_negatives");

    let b = fig09::run(2, scale, 0xF1609B);
    let tb = fig09::table("Figure 9(b): false negatives, 2 tree retransmissions", &b);
    tb.print();
    tb.write_csv("fig09b_false_negatives_retx");

    let c = fig09::run_regional(scale, 0xF1609C);
    let tc = fig09::table(
        "§7.4.3 extension: false negatives under Regional(p, 0.05)",
        &c,
    );
    tc.print();
    tc.write_csv("fig09c_false_negatives_regional");

    println!(
        "\npaper shape: (a) TAG's FN%% climbs steeply, SD stays low, TD tracks\n\
         the best; (b) retransmissions rescue TAG at low p but SD/TD still\n\
         win beyond p ~ 0.5; false positives stay small (< ~3%% lossless)"
    );
}
