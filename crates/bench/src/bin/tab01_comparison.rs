//! Regenerates Table 1 (quantified): the energy and error components
//! behind the paper's qualitative comparison, measured at Global(0.15)
//! and Global(0).

use td_bench::experiments::tab01;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!("Table 1 (quantified) — sensors={}", scale.sensors);
    let rows = tab01::run(scale, 0x7AB01);
    let t = tab01::table(&rows);
    t.print();
    t.write_csv("tab01_comparison");
    println!(
        "\npaper shape: messages minimal (~1/node/epoch) everywhere; tree has\n\
         zero approximation error but very large communication error; rings\n\
         the reverse; TD both-small; freq-items messages ~3x for multi-path"
    );
}
