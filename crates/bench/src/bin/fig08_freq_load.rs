//! Regenerates Figure 8: average and maximum per-sensor communication
//! load of the four tree frequent-items algorithms (eps = 0.1%, s = 1%,
//! no loss) on LabData and disjoint-uniform synthetic streams.

use td_bench::experiments::fig08;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 8 — frequent-items loads (items/node={})",
        scale.items_per_node
    );
    let rows = fig08::run(scale, 0xF1608);
    let t = fig08::table(&rows);
    t.print();
    t.write_csv("fig08_freq_load");
    println!(
        "\npaper shape: Min Total-load roughly halves Min Max-load's total on\n\
         the disjoint-uniform streams; Hybrid best-or-near-best on LabData;\n\
         Quantiles-based the most expensive (log-scale bars in the paper)"
    );
}
