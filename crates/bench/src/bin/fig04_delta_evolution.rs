//! Regenerates Figure 4: the TD delta region under Regional(0.3, 0.05)
//! and Regional(0.8, 0.05), with ASCII scatter plots and localization
//! statistics (plus the TD-Coarse contrast discussed in §7.2).

use td_bench::experiments::fig04;
use td_bench::report::Table;
use td_bench::Scale;
use td_workloads::synthetic::Synthetic;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 4 — delta evolution (sensors={}, warmup={})",
        scale.sensors, scale.warmup
    );
    let snapshots = fig04::run(scale, 0xF1604);
    let t = fig04::table(&snapshots);
    t.print();
    t.write_csv("fig04_delta_summary");

    // Scatter CSV + ASCII maps for the TD snapshots.
    let spec = Synthetic::sized(scale.sensors);
    let net = spec.build(0xF1604);
    let region = td_workloads::scenario::failure_region_for(spec.width, spec.height);
    for snap in &snapshots {
        if snap.scheme != "TD" {
            continue;
        }
        println!("\n--- TD delta under Regional({}, 0.05) ---", snap.p1);
        println!("{}", fig04::ascii_map(&net, &snap.delta, region));
        let mut t = Table::new(format!("delta coordinates p1={}", snap.p1), &["x", "y"]);
        for &(x, y) in &snap.delta {
            t.row(vec![format!("{x:.2}"), format!("{y:.2}")]);
        }
        t.write_csv(&format!("fig04_delta_p{}", (snap.p1 * 100.0) as u32));
    }
    println!(
        "paper shape: the TD delta concentrates in the failure quadrant\n\
         (frac_delta_in_region >> frac_nodes_in_region), growing with p1;\n\
         TD-Coarse expands uniformly around the base station instead"
    );
}
