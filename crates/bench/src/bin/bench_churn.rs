//! Regenerates the correlated-failure sweep (`results/churn.csv`):
//! per-epoch Sum RMS, bytes/epoch, coverage, and epoch-plan
//! patch-vs-rebuild counters versus Gilbert–Elliott burst length and
//! node-churn rate, across all four schemes, at a fixed 20% average
//! loss. Respects `TD_SCALE=smoke|paper`; runs at smoke scale by
//! default so CI can emit the CSV on every push.

use td_bench::experiments::churn;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    let t0 = std::time::Instant::now();
    let rows = churn::run(scale, 0xC4012);
    let table = churn::table(&rows);
    table.print();
    match table.write_csv("churn") {
        Some(path) => println!("wrote {}", path.display()),
        None => std::process::exit(1),
    }
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
