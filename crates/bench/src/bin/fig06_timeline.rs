//! Regenerates Figure 6: 400-epoch relative-error timeline while the
//! failure model steps Global(0) -> Regional(0.3,0) -> Global(0.3) ->
//! Global(0).

use td_bench::experiments::fig06;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 6 — relative error timeline (sensors={})",
        scale.sensors
    );
    let result = fig06::run(scale, 0xF1606);
    fig06::full_table(&result).write_csv("fig06_timeline");
    let t = fig06::phase_means(&result);
    t.print();
    t.write_csv("fig06_phase_means");
    println!(
        "\npaper shape: TAG best in lossless phases, SD best in lossy ones;\n\
         converged TD/TD-Coarse track the better of the two; TD converges\n\
         slower (~50 epochs) but settles tighter than TD-Coarse"
    );
}
