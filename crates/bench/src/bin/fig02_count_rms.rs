//! Regenerates Figure 2: RMS error of a Count query under Global(p) for
//! p in 0..0.4, all four schemes.

use td_bench::experiments::rms;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 2 — Count RMS vs loss (sensors={}, epochs={}, runs={})",
        scale.sensors, scale.epochs, scale.runs
    );
    let points = rms::figure2(scale, 0xF1602);
    let t = rms::table("Figure 2: RMS error of Count under Global(p)", &points);
    t.print();
    t.write_csv("fig02_count_rms");
    println!(
        "\npaper shape: TAG lowest at p=0; crossover at small p; SD flat ~0.12;\n\
         TD/TD-Coarse <= min(TAG, SD) with up to ~3x reduction at moderate p"
    );
}
