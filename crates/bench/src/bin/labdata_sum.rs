//! Regenerates §7.3's LabData numbers: RMS error of Sum for all four
//! schemes under the lab's distance-based loss.

use td_bench::experiments::labdata_sum;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "LabData Sum RMS (epochs={}, runs={})",
        scale.epochs, scale.runs
    );
    let res = labdata_sum::run(scale, 0x1AB5);
    let t = labdata_sum::table(&res);
    t.print();
    t.write_csv("labdata_sum");
    println!(
        "\nTD ran multi-path over {:.0}% of the motes (paper: \"most of the nodes\")",
        res.td_delta_fraction * 100.0
    );
}
