//! Engine throughput smoke: runs a short multi-trial sweep through the
//! [`TrialPool`] and the plan-reuse/rebuild epoch paths, then writes
//! machine-readable throughput numbers to `results/bench_engine.json` so
//! CI can track the perf trajectory across PRs.
//!
//! Keep the workload small: this runs on every CI push. The JSON schema
//! is flat on purpose (string keys → numbers) so a future PR can diff
//! two runs with nothing fancier than `jq`.

use std::io::Write;
use std::time::Instant;

use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings, TrialPool};
use tributary_delta::protocol::ScalarProtocol;
use tributary_delta::session::{Scheme, Session};

const TRIALS: u64 = 8;
const EPOCHS_PER_TRIAL: u64 = 30;
const WARMUP: u64 = 2;
const SENSORS: usize = 150;

/// One timed sweep: returns (elapsed seconds, total epochs run, total
/// payload bytes across the merged trial stats).
fn timed_sweep(
    pool: &TrialPool,
    net: &td_netsim::network::Network,
    values: &[u64],
) -> (f64, u64, u64) {
    let t0 = Instant::now();
    let batch = Driver::run_trials(pool, 0xE1234, TRIALS, |_t, rng| {
        let session = Session::with_paper_defaults(Scheme::Td, net, rng);
        let mut driver = Driver::new(session, WARMUP);
        let run = driver.run_scalar(
            &td_aggregates::sum::Sum::default(),
            &FixedReadings(values.to_vec()),
            &Global::new(0.2),
            EPOCHS_PER_TRIAL,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            rng,
        );
        (
            run.estimates.len() as u64,
            driver.into_session().stats().clone(),
        )
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let epochs: u64 = TRIALS * (WARMUP + EPOCHS_PER_TRIAL);
    let bytes = batch.stats.map(|s| s.total_bytes()).unwrap_or(0);
    (elapsed, epochs, bytes)
}

/// Nanoseconds per epoch through a session, with or without plan reuse.
fn timed_epochs(net: &td_netsim::network::Network, values: &[u64], rebuild: bool) -> f64 {
    let model = Global::new(0.1);
    let mut rng = rng_from_seed(77);
    let mut session = Session::with_paper_defaults(Scheme::Td, net, &mut rng);
    let epochs = 60u64;
    let t0 = Instant::now();
    for epoch in 0..epochs {
        if rebuild {
            session.clear_cached_plan();
        }
        let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), values);
        session.run_epoch(&proto, &model, epoch, &mut rng);
    }
    t0.elapsed().as_nanos() as f64 / epochs as f64
}

fn main() {
    let net = Synthetic::small(SENSORS).build(5);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 50).collect();

    let pool = TrialPool::new();
    let (seq_s, epochs, bytes) = timed_sweep(&TrialPool::with_threads(1), &net, &values);
    let (pool_s, _, pool_bytes) = timed_sweep(&pool, &net, &values);
    assert_eq!(bytes, pool_bytes, "parallel sweep diverged from sequential");

    let reuse_ns = timed_epochs(&net, &values, false);
    let rebuild_ns = timed_epochs(&net, &values, true);

    let json = format!(
        "{{\n  \"sensors\": {SENSORS},\n  \"trials\": {TRIALS},\n  \"epochs_total\": {epochs},\n  \
         \"threads\": {},\n  \"sequential_s\": {seq_s:.4},\n  \"pool_s\": {pool_s:.4},\n  \
         \"speedup\": {:.3},\n  \"epochs_per_sec_sequential\": {:.1},\n  \
         \"epochs_per_sec_pool\": {:.1},\n  \"total_bytes\": {bytes},\n  \
         \"epoch_ns_plan_reuse\": {reuse_ns:.0},\n  \"epoch_ns_rebuild\": {rebuild_ns:.0},\n  \
         \"plan_reuse_ratio\": {:.3}\n}}\n",
        pool.threads(),
        seq_s / pool_s.max(1e-9),
        epochs as f64 / seq_s.max(1e-9),
        epochs as f64 / pool_s.max(1e-9),
        rebuild_ns / reuse_ns.max(1.0),
    );
    print!("{json}");

    let path = td_bench::report::results_dir().join("bench_engine.json");
    if let Err(e) = std::fs::create_dir_all(path.parent().expect("has parent"))
        .and_then(|()| std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
