//! Engine throughput smoke: runs a short multi-trial sweep through the
//! [`TrialPool`] and the plan-reuse/rebuild epoch paths, then writes
//! machine-readable throughput numbers to `results/bench_engine.json` so
//! CI can track the perf trajectory across PRs.
//!
//! Keep the workload small: this runs on every CI push. The JSON schema
//! is flat on purpose (string keys → numbers) so a future PR can diff
//! two runs with nothing fancier than `jq` — and so the perf gate's
//! `parse_flat_json` can read it back. Alongside the throughput keys it
//! reports the epoch-lifecycle phase breakdown (p50/p99 per phase, from
//! the global telemetry registry) and a `telemetry_compiled` marker, so
//! a `--no-default-features` run (written to `TD_BENCH_OUT`, default
//! `bench_engine.json`) can be gated against the telemetry-on baseline
//! to prove the disabled hooks cost nothing.

use std::time::Instant;

use td_bench::json::{num, JsonObject};
use td_telemetry::phase::Phase;

use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_netsim::stats::CommStats;
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::rings::Rings;
use td_topology::td::TdTopology;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings, TrialPool};
use tributary_delta::protocol::ScalarProtocol;
use tributary_delta::query::QuerySet;
use tributary_delta::runner::{EpochPlan, RunnerConfig};
use tributary_delta::session::{Scheme, Session, SessionBuilder};

const TRIALS: u64 = 8;
const EPOCHS_PER_TRIAL: u64 = 30;
const WARMUP: u64 = 2;
const SENSORS: usize = 150;
/// Reps per timed quantity; the reported figure is the minimum, which is
/// the standard de-noising for ratio gates on shared CI machines (the
/// min is the run least disturbed by scheduler interference).
const REPS: usize = 3;
/// Network size for the intra-epoch worker sweep. Big enough that one
/// epoch is milliseconds of real aggregation work — the regime the
/// level-parallel executor is for — while keeping the whole sweep a few
/// seconds of CI time.
const INTRA_NODES: usize = 10_000;

/// One timed sweep (best of [`REPS`]): returns (elapsed seconds, total
/// epochs run, total payload bytes across the merged trial stats).
fn timed_sweep(
    pool: &TrialPool,
    net: &td_netsim::network::Network,
    values: &[u64],
) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut bytes = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let batch = Driver::run_trials(pool, 0xE1234, TRIALS, |_t, rng| {
            let session = Session::with_paper_defaults(Scheme::Td, net, rng);
            let mut driver = Driver::new(session, WARMUP);
            let run = driver.run_scalar(
                &td_aggregates::sum::Sum::default(),
                &FixedReadings(values.to_vec()),
                &Global::new(0.2),
                EPOCHS_PER_TRIAL,
                |readings| readings[1..].iter().sum::<u64>() as f64,
                rng,
            );
            (
                run.estimates.len() as u64,
                driver.into_session().stats().clone(),
            )
        });
        best = best.min(t0.elapsed().as_secs_f64());
        bytes = batch.stats.map(|s| s.total_bytes()).unwrap_or(0);
    }
    let epochs: u64 = TRIALS * (WARMUP + EPOCHS_PER_TRIAL);
    (best, epochs, bytes)
}

/// Nanoseconds per epoch through a session, with or without plan reuse
/// (best of [`REPS`]). One session persists across reps — the epoch
/// counter keeps advancing — so later reps measure the steady state the
/// plan cache and arena recycling are designed for.
fn timed_epochs(net: &td_netsim::network::Network, values: &[u64], rebuild: bool) -> f64 {
    let model = Global::new(0.1);
    let mut rng = rng_from_seed(77);
    let mut session = Session::with_paper_defaults(Scheme::Td, net, &mut rng);
    let epochs = 60u64;
    let mut epoch = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..epochs {
            if rebuild {
                session.clear_cached_plan();
            }
            let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), values);
            session.run_epoch(&proto, &model, epoch, &mut rng);
            epoch += 1;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / epochs as f64);
    }
    best
}

/// Nanoseconds per epoch of a 10k-node TD session at a given intra-epoch
/// worker count (best of 2 reps of 3 timed epochs, after one warm-up
/// epoch per rep). The session — and thus the compiled plan, the
/// level-contiguous arenas, and the per-worker scratch pools — persists
/// across reps, so this measures the steady-state hot path.
fn timed_intra_epoch(net: &td_netsim::network::Network, values: &[u64], workers: usize) -> f64 {
    let model = Global::new(0.1);
    let mut rng = rng_from_seed(0x10AD + workers as u64);
    let mut session = SessionBuilder::new(Scheme::Td)
        .workers(workers)
        .build(net, &mut rng);
    let mut epoch = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), values);
        session.run_epoch(&proto, &model, epoch, &mut rng);
        epoch += 1;
        let timed = 3u64;
        let t0 = Instant::now();
        for _ in 0..timed {
            let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), values);
            session.run_epoch(&proto, &model, epoch, &mut rng);
            epoch += 1;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / timed as f64);
    }
    best
}

/// One §4.2-sized oscillating mutation: expand a subtree on even steps,
/// switch its children back on odd steps — the worst-case relabel
/// pattern for plan maintenance.
fn oscillate(td: &mut TdTopology, root: td_netsim::node::NodeId, step: u64) {
    if step.is_multiple_of(2) {
        td.expand_subtree(root).expect("root stays M");
    } else {
        let kids: Vec<_> = td.tree().children(root).to_vec();
        for c in kids {
            let _ = td.switch_to_t(c);
        }
    }
}

/// Plan-maintenance operations per second, isolated from epoch
/// execution: one op = one §4.2 oscillating mutation plus bringing the
/// compiled plan back in line (in-place patch vs full recompile). This
/// is the gate metric with teeth — in the end-to-end adaptation
/// numbers `run_set` dominates the epoch, so a patch-path regression
/// all the way back to recompile cost would hide inside the gate
/// budget there; here it shows up at full magnitude.
fn timed_plan_maintenance(net: &td_netsim::network::Network, patch: bool) -> f64 {
    let mut rng = rng_from_seed(99);
    let rings = Rings::build(net);
    let tree = build_bushy_tree(net, &rings, BushyOptions::default(), &mut rng);
    let mut td = TdTopology::new(rings, tree, 2);
    let mut plan = EpochPlan::compile_td(&td);
    let root = td
        .switchable_m_nodes()
        .into_iter()
        .find(|&u| !td.tree().children(u).is_empty())
        .expect("a switchable M vertex with children");
    let ops = 20_000u64;
    let t0 = Instant::now();
    for op in 0..ops {
        oscillate(&mut td, root, op);
        if patch {
            assert!(
                plan.patch(&td, td.len()).is_some(),
                "patch refused mid-bench"
            );
        } else {
            plan = EpochPlan::compile_td(&td);
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Epochs per second when **every epoch forces a §4.2-sized relabel**
/// (the oscillation above), with the plan either patched in place from
/// the topology's delta log or recompiled from scratch each epoch. The
/// ratio is the end-to-end adaptation-cost win the incremental patch
/// path buys.
fn timed_adaptation(net: &td_netsim::network::Network, values: &[u64], patch: bool) -> f64 {
    let mut rng = rng_from_seed(88);
    let rings = Rings::build(net);
    let tree = build_bushy_tree(net, &rings, BushyOptions::default(), &mut rng);
    let mut td = TdTopology::new(rings, tree, 2);
    let model = Global::new(0.1);
    let mut stats = CommStats::new(net.len());
    let mut plan = EpochPlan::compile_td(&td);
    let root = td
        .switchable_m_nodes()
        .into_iter()
        .find(|&u| !td.tree().children(u).is_empty())
        .expect("a switchable M vertex with children");
    let epochs = 120u64;
    let t0 = Instant::now();
    for epoch in 0..epochs {
        oscillate(&mut td, root, epoch);
        if patch {
            assert!(
                plan.patch(&td, td.len()).is_some(),
                "patch refused mid-bench"
            );
        } else {
            plan = EpochPlan::compile_td(&td);
        }
        let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), values);
        let mut set = QuerySet::new();
        set.register(&proto);
        plan.run_set(
            &set,
            net,
            &model,
            RunnerConfig::default(),
            epoch,
            &mut stats,
            &mut rng,
        );
    }
    epochs as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let net = Synthetic::small(SENSORS).build(5);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 50).collect();

    let pool = TrialPool::new();
    let (seq_s, epochs, bytes) = timed_sweep(&TrialPool::with_threads(1), &net, &values);
    let (pool_s, _, pool_bytes) = timed_sweep(&pool, &net, &values);
    assert_eq!(bytes, pool_bytes, "parallel sweep diverged from sequential");

    let reuse_ns = timed_epochs(&net, &values, false);
    let rebuild_ns = timed_epochs(&net, &values, true);

    let adapt_patch = timed_adaptation(&net, &values, true);
    let adapt_recompile = timed_adaptation(&net, &values, false);
    let maint_patch = timed_plan_maintenance(&net, true);
    let maint_recompile = timed_plan_maintenance(&net, false);

    // Intra-epoch worker sweep at 10k nodes. Results are bit-identical
    // across worker counts by construction (pinned by the e2e proptest),
    // so the only question here is wall-clock. `cores` is recorded next
    // to the speedups because they are meaningless without it: on a
    // single-core CI box every worker count above 1 can only add
    // synchronization overhead, and the honest speedup is ≤ 1.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let intra_net = Synthetic::small(INTRA_NODES).build(7);
    let intra_values: Vec<u64> = (0..intra_net.len() as u64).map(|i| 1 + i % 50).collect();
    let intra_ns: Vec<f64> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|w| timed_intra_epoch(&intra_net, &intra_values, w))
        .collect();
    let (i1, i2, i4, i8) = (intra_ns[0], intra_ns[1], intra_ns[2], intra_ns[3]);

    let mut obj = JsonObject::new();
    obj.set("sensors", SENSORS)
        .set("trials", TRIALS)
        .set("epochs_total", epochs)
        .set("threads", pool.threads())
        .set("sequential_s", num(seq_s, 4))
        .set("pool_s", num(pool_s, 4))
        .set("speedup", num(seq_s / pool_s.max(1e-9), 3))
        .set(
            "epochs_per_sec_sequential",
            num(epochs as f64 / seq_s.max(1e-9), 1),
        )
        .set(
            "epochs_per_sec_pool",
            num(epochs as f64 / pool_s.max(1e-9), 1),
        )
        .set("total_bytes", bytes)
        .set("epoch_ns_plan_reuse", num(reuse_ns, 0))
        .set("epoch_ns_rebuild", num(rebuild_ns, 0))
        .set("plan_reuse_ratio", num(rebuild_ns / reuse_ns.max(1.0), 3))
        .set("adaptation_epochs_per_sec_patch", num(adapt_patch, 1))
        .set(
            "adaptation_epochs_per_sec_recompile",
            num(adapt_recompile, 1),
        )
        .set(
            "adaptation_patch_speedup",
            num(adapt_patch / adapt_recompile.max(1e-9), 3),
        )
        .set("plan_patches_per_sec", num(maint_patch, 1))
        .set("plan_recompiles_per_sec", num(maint_recompile, 1))
        .set(
            "plan_patch_speedup",
            num(maint_patch / maint_recompile.max(1e-9), 3),
        )
        .set("cores", cores)
        .set("intra_epoch_nodes", INTRA_NODES)
        .set("intra_epoch_ns_1w", num(i1, 0))
        .set("intra_epoch_speedup_2w", num(i1 / i2.max(1.0), 3))
        .set("intra_epoch_speedup_4w", num(i1 / i4.max(1.0), 3))
        .set("intra_epoch_speedup_8w", num(i1 / i8.max(1.0), 3));
    // Phase breakdown from everything the runs above recorded. Keys are
    // flat and numeric (the gate parser rejects anything else); in a
    // no-telemetry build every phase reports zero. `telemetry_compiled`
    // marks which build wrote the file so a gate comparison knows what
    // it is looking at. `WindowFold` is skipped: this bench never runs
    // the stream layer, so its keys live in `bench_stream.json`, where
    // they actually populate.
    obj.set("telemetry_compiled", u64::from(td_telemetry::compiled()));
    let snap = td_telemetry::global().snapshot();
    for p in Phase::ALL.into_iter().filter(|&p| p != Phase::WindowFold) {
        let base = p.metric_name().replace('.', "_");
        let base = base.strip_suffix("_ns").expect("phase metrics end in _ns");
        let (p50, p99) = snap
            .histogram(p.metric_name())
            .map(|h| (h.quantile(0.50), h.quantile(0.99)))
            .unwrap_or((0.0, 0.0));
        obj.set(&format!("{base}_p50_ns"), num(p50, 1));
        obj.set(&format!("{base}_p99_ns"), num(p99, 1));
    }
    let json = obj.to_string_pretty();
    print!("{json}");

    let out_name = std::env::var("TD_BENCH_OUT").unwrap_or_else(|_| "bench_engine.json".into());
    td_bench::json::write_results_text(&out_name, &json);
}
