//! CI perf gate over `results/bench_engine.json`.
//!
//! ```sh
//! perf_gate <baseline.json> <fresh.json> [--key K]... [--max-regression 0.20]
//! ```
//!
//! Exits non-zero when **any** gated throughput key regressed by more
//! than the threshold (default 20%, per the ROADMAP budget; overridable
//! with `--max-regression` or the `PERF_GATE_MAX_REGRESSION` env var).
//! `--key` repeats to gate several keys in one run; without it the gate
//! covers steady-state epochs/sec *and* adaptation epochs/sec (the
//! patch path). A missing baseline file passes with a notice — the
//! first run on a fresh branch has nothing to compare against — and a
//! key missing from the baseline (a newly introduced metric) passes for
//! that key alone.
//!
//! The gate is file-agnostic: CI runs it once over
//! `results/bench_engine.json` with the defaults below, and again over
//! `results/bench_service.json` with `--key tenant_epochs_per_sec`, so
//! the service layer's multiplexing throughput is gated alongside the
//! engine and adaptation keys.

use td_bench::gate;

/// The default gated keys: steady-state throughput, end-to-end
/// adaptation-epoch throughput, the isolated plan-maintenance
/// (patch-path) throughput — where a patch regression to recompile cost
/// shows at full magnitude instead of being diluted by epoch execution —
/// and the 10k-node intra-epoch parallel speedup at 8 workers (compare
/// against the `cores` key in the same report: on a single-core runner
/// the honest value sits at or below 1, and the gate tracks it there).
const DEFAULT_KEYS: &[&str] = &[
    "epochs_per_sec_pool",
    "adaptation_epochs_per_sec_patch",
    "plan_patches_per_sec",
    "intra_epoch_speedup_8w",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    let mut max_regression: f64 = std::env::var("PERF_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--key" => keys.push(it.next().expect("--key needs a value")),
            "--max-regression" => {
                max_regression = it
                    .next()
                    .expect("--max-regression needs a value")
                    .parse()
                    .expect("--max-regression must be a number")
            }
            _ => paths.push(arg),
        }
    }
    if keys.is_empty() {
        keys = DEFAULT_KEYS.iter().map(|k| k.to_string()).collect();
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!(
            "usage: perf_gate <baseline.json> <fresh.json> [--key K]... [--max-regression R]"
        );
        std::process::exit(2);
    };

    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        // Only a genuinely absent file counts as "first run"; any other
        // read failure is a gate misconfiguration and must not silently
        // disable the check forever.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("perf gate: no baseline at {baseline_path}; passing (first run)");
            return;
        }
        Err(e) => {
            eprintln!("perf gate error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let fresh = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("fresh results missing at {fresh_path}: {e}"));

    let key_refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
    match gate::check_all(&baseline, &fresh, &key_refs, max_regression) {
        Ok(outcomes) => {
            let mut failed = false;
            for (key, outcome) in &outcomes {
                match outcome {
                    gate::KeyOutcome::Checked(out) => {
                        println!(
                            "perf gate: {key} baseline {:.1} → fresh {:.1} \
                             ({:+.1}% change, budget -{:.0}%)",
                            out.baseline,
                            out.fresh,
                            -out.regression * 100.0,
                            max_regression * 100.0
                        );
                        if out.failed {
                            eprintln!("perf gate FAILED: {key} regressed beyond the budget");
                            failed = true;
                        }
                    }
                    gate::KeyOutcome::NewKey => {
                        println!("perf gate: {key} is new (no baseline value); passing");
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf gate error: {e}");
            std::process::exit(2);
        }
    }
}
