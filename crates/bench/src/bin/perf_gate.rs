//! CI perf gate over `results/bench_engine.json`.
//!
//! ```sh
//! perf_gate <baseline.json> <fresh.json> [--key epochs_per_sec_pool] \
//!           [--max-regression 0.20]
//! ```
//!
//! Exits non-zero when the gated throughput key regressed by more than
//! the threshold (default 20%, per the ROADMAP budget; overridable with
//! `--max-regression` or the `PERF_GATE_MAX_REGRESSION` env var). A
//! missing baseline file passes with a notice — the first run on a
//! fresh branch has nothing to compare against.

use td_bench::gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut key = "epochs_per_sec_pool".to_string();
    let mut max_regression: f64 = std::env::var("PERF_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--key" => key = it.next().expect("--key needs a value"),
            "--max-regression" => {
                max_regression = it
                    .next()
                    .expect("--max-regression needs a value")
                    .parse()
                    .expect("--max-regression must be a number")
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: perf_gate <baseline.json> <fresh.json> [--key K] [--max-regression R]");
        std::process::exit(2);
    };

    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        // Only a genuinely absent file counts as "first run"; any other
        // read failure is a gate misconfiguration and must not silently
        // disable the check forever.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("perf gate: no baseline at {baseline_path}; passing (first run)");
            return;
        }
        Err(e) => {
            eprintln!("perf gate error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let fresh = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("fresh results missing at {fresh_path}: {e}"));

    match gate::check(&baseline, &fresh, &key, max_regression) {
        Ok(out) => {
            println!(
                "perf gate: {key} baseline {:.1} → fresh {:.1} ({:+.1}% change, budget -{:.0}%)",
                out.baseline,
                out.fresh,
                -out.regression * 100.0,
                max_regression * 100.0
            );
            if out.failed {
                eprintln!("perf gate FAILED: {key} regressed beyond the budget");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf gate error: {e}");
            std::process::exit(2);
        }
    }
}
