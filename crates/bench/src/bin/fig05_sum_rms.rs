//! Regenerates Figure 5: RMS error of Sum under (a) Global(p) and (b)
//! Regional(p, 0.05), p in 0..1, all four schemes.

use td_bench::experiments::rms;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!(
        "Figure 5 — Sum RMS vs loss (sensors={}, epochs={}, runs={})",
        scale.sensors, scale.epochs, scale.runs
    );
    let a = rms::figure5a(scale, 0xF1605A);
    let ta = rms::table("Figure 5(a): Sum RMS under Global(p)", &a);
    ta.print();
    ta.write_csv("fig05a_sum_global");

    let b = rms::figure5b(scale, 0xF1605B);
    let tb = rms::table("Figure 5(b): Sum RMS under Regional(p, 0.05)", &b);
    tb.print();
    tb.write_csv("fig05b_sum_regional");

    println!(
        "\npaper shape: (a) TD tracks best-of-both with a visible gain at low p;\n\
         (b) TD clearly below TD-Coarse (localized delta keeps exact tree regions)"
    );
}
