//! Regenerates the streaming-window sweep (`results/stream_windows.csv`):
//! windowed-Sum RMS and bytes/epoch versus window length and hop, across
//! all four schemes, over a drifting stream under 20% loss. Respects
//! `TD_SCALE=smoke|paper`; runs at smoke scale by default so CI can emit
//! the CSV on every push.

use td_bench::experiments::stream_windows;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    let t0 = std::time::Instant::now();
    let rows = stream_windows::run(scale, 0x57E2EA);
    let table = stream_windows::table(&rows);
    table.print();
    match table.write_csv("stream_windows") {
        Some(path) => println!("wrote {}", path.display()),
        None => std::process::exit(1),
    }
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
