//! Streaming-window bench: the accuracy sweep CSV plus the window-hop
//! throughput numbers (`results/bench_stream.json`).
//!
//! Two parts, both on every CI push:
//!
//! 1. The `(scheme, window)` accuracy sweep (`results/stream_windows.csv`):
//!    windowed-Sum RMS and bytes/epoch versus window length and hop over
//!    a drifting stream under 20% loss. Driving real `StreamSession`s is
//!    also what populates the `phase.window_fold_ns` histogram, so this
//!    bench — not `bench_engine`, which never runs a stream — reports
//!    the `phase_window_fold_p50/p99_ns` keys.
//! 2. The hop micro-bench: one `WindowAccum` (sliding, hop 1, `Add`)
//!    driven directly with synthetic integer panes at W ∈ {16, 256,
//!    4096}, in both fold modes. `FoldMode::Refold` re-folds all W panes
//!    per hop (the pre-incremental engine's cost); `Incremental` is the
//!    subtract-on-evict path. The headline `window_incremental_speedup`
//!    (W = 4096) is the O(W) → O(1) win and must be ≥ 10×; being a
//!    ratio of same-machine runs it is CI-gateable, and `perf_gate`
//!    gates it against the committed baseline.
//!
//! The JSON schema is flat (string keys → numbers) for `jq` and the
//! perf gate's `parse_flat_json`, like the other bench JSONs.

use std::time::Instant;

use td_bench::experiments::stream_windows;
use td_bench::json::{num, JsonObject};
use td_bench::Scale;
use td_stream::{
    AccumCounters, EpochMerge, FoldMode, PaneInput, PaneKind, PaneValue, WindowAccum, WindowSpec,
};
use td_telemetry::phase::Phase;

/// Sliding-window lengths for the hop micro-bench (hop 1).
const HOP_WINDOWS: [u32; 3] = [16, 256, 4096];
/// Reps per timed quantity; the reported figure is the best rep (the
/// same de-noising as `bench_engine`: the run least disturbed by
/// scheduler interference).
const REPS: usize = 3;

/// Synthetic integer pane for hop `seq`: integer-valued and small, so
/// the incremental path's exactness certificate holds on every eviction
/// and the measured loop is the pure O(1) subtract path.
fn pane(seq: u64) -> PaneInput {
    PaneInput {
        epoch: seq,
        value: PaneValue::Scalar((seq % 1021) as f64),
        coverage: 1.0,
        relabeled: false,
        nodes_joined: 0,
        nodes_left: 0,
        bytes: 48,
    }
}

/// Window hops per second for one `(len, mode)` cell, best of [`REPS`].
/// A hop = absorb one pane + emit the closed window's answer (hop 1
/// emits every pane once the window is warm).
fn hops_per_sec(len: u32, mode: FoldMode) -> f64 {
    // Refold work is O(len) per hop — scale the hop count so each cell
    // does comparable total work instead of W=4096 dominating the bench.
    let hops: u64 = match mode {
        FoldMode::Refold => (4_000_000 / len as u64).max(4_000),
        FoldMode::Incremental => 400_000,
    };
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut acc = WindowAccum::new(
            WindowSpec::sliding(len, 1),
            EpochMerge::Add,
            PaneKind::Scalar,
            mode,
        );
        let mut counters = AccumCounters::default();
        let mut sink = 0.0f64;
        for seq in 0..len as u64 {
            if let Some(ans) = acc.absorb(seq, &pane(seq), &mut counters) {
                sink += ans.value;
            }
        }
        let t0 = Instant::now();
        for seq in len as u64..len as u64 + hops {
            if let Some(ans) = acc.absorb(seq, &pane(seq), &mut counters) {
                sink += ans.value;
            }
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(sink);
        if mode == FoldMode::Incremental {
            assert_eq!(
                counters.value_refolds, 0,
                "integer panes left the O(1) subtract path — the bench \
                 would be measuring the fallback, not the fast path"
            );
        }
        best = best.max(hops as f64 / dt);
    }
    best
}

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    let t0 = std::time::Instant::now();

    // Part 1: the accuracy sweep (drives real sessions → populates the
    // window-fold phase histogram read below).
    let rows = stream_windows::run(scale, 0x57E2EA);
    let table = stream_windows::table(&rows);
    table.print();
    match table.write_csv("stream_windows") {
        Some(path) => println!("wrote {}", path.display()),
        None => std::process::exit(1),
    }

    // Part 2: the hop micro-bench, both fold modes.
    let mut obj = JsonObject::new();
    obj.set("telemetry_compiled", u64::from(td_telemetry::compiled()));
    let mut headline = 0.0;
    for len in HOP_WINDOWS {
        let refold = hops_per_sec(len, FoldMode::Refold);
        let incremental = hops_per_sec(len, FoldMode::Incremental);
        let speedup = incremental / refold.max(1e-9);
        println!(
            "W={len}: refold {refold:.0} hops/s, incremental {incremental:.0} hops/s \
             ({speedup:.1}x)"
        );
        obj.set(
            &format!("window_hops_per_sec_refold_w{len}"),
            num(refold, 1),
        )
        .set(
            &format!("window_hops_per_sec_incremental_w{len}"),
            num(incremental, 1),
        )
        .set(
            &format!("window_incremental_speedup_w{len}"),
            num(speedup, 2),
        );
        headline = speedup;
    }
    // The headline is the largest window: where O(W) vs O(1) matters.
    obj.set("window_incremental_speedup", num(headline, 2));
    assert!(
        headline >= 10.0,
        "incremental hop speedup at W=4096 is {headline:.1}x, below the 10x floor \
         — the O(1) path regressed toward the re-fold"
    );

    // The window-fold phase breakdown from the sweep above. These keys
    // used to sit (always zero) in bench_engine.json; they live here
    // because only this bench actually runs the stream layer.
    let snap = td_telemetry::global().snapshot();
    let (p50, p99) = snap
        .histogram(Phase::WindowFold.metric_name())
        .map(|h| (h.quantile(0.50), h.quantile(0.99)))
        .unwrap_or((0.0, 0.0));
    obj.set("phase_window_fold_p50_ns", num(p50, 1));
    obj.set("phase_window_fold_p99_ns", num(p99, 1));
    if td_telemetry::compiled() {
        assert!(
            p50 > 0.0 && p99 > 0.0,
            "window-fold phase histogram is empty after a full sweep — \
             the per-epoch stream instrumentation went missing"
        );
    }

    let json = obj.to_string_pretty();
    print!("{json}");
    td_bench::json::write_results_text("bench_stream.json", &json);
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
