//! Runs every regenerator in sequence (the full §7 evaluation). Respects
//! `TD_SCALE=smoke|paper`; paper scale takes several minutes.

use td_bench::experiments::{
    ablation, churn, fig04, fig06, fig07, fig08, fig09, fig09d, fig_quantiles, labdata_sum, rms,
    stream_windows, tab01, tab02,
};
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    let t0 = std::time::Instant::now();
    println!(
        "Running the full evaluation at sensors={}, epochs={}, runs={} (TD_SCALE to change)",
        scale.sensors, scale.epochs, scale.runs
    );
    if let Some(w) = scale.workers {
        println!(
            "TD_WORKERS={w}: every session runs its epochs with {} \
             (results are bit-identical on any worker count)",
            match w {
                0 => "all available cores".to_string(),
                1 => "the sequential executor".to_string(),
                n => format!("{n} intra-epoch workers"),
            }
        );
    }

    let t = tab02::table();
    t.print();
    t.write_csv("tab02_domination");
    println!("{}", tab02::summary());

    let points = rms::figure2(scale, 0xF1602);
    let t = rms::table("Figure 2: RMS error of Count under Global(p)", &points);
    t.print();
    t.write_csv("fig02_count_rms");

    let a = rms::figure5a(scale, 0xF1605A);
    rms::table("Figure 5(a): Sum RMS under Global(p)", &a).write_csv("fig05a_sum_global");
    rms::table("Figure 5(a): Sum RMS under Global(p)", &a).print();
    let b = rms::figure5b(scale, 0xF1605B);
    rms::table("Figure 5(b): Sum RMS under Regional(p, 0.05)", &b).write_csv("fig05b_sum_regional");
    rms::table("Figure 5(b): Sum RMS under Regional(p, 0.05)", &b).print();

    let snaps = fig04::run(scale, 0xF1604);
    let t = fig04::table(&snaps);
    t.print();
    t.write_csv("fig04_delta_summary");

    let timeline = fig06::run(scale, 0xF1606);
    fig06::full_table(&timeline).write_csv("fig06_timeline");
    fig06::phase_means(&timeline).print();

    let trials = (scale.runs * 3).max(3);
    let d = fig07::density_sweep(trials, 0xF1607A);
    fig07::table("Figure 7(a): domination vs density", "density", &d).print();
    fig07::table("Figure 7(a): domination vs density", "density", &d).write_csv("fig07a_density");
    let w = fig07::width_sweep(trials, 0xF1607B);
    fig07::table("Figure 7(b): domination vs width", "width", &w).print();
    fig07::table("Figure 7(b): domination vs width", "width", &w).write_csv("fig07b_width");
    let (lab_tag, lab_ours) = fig07::labdata_factor(trials, 0xF1607C);
    println!("LabData domination: TAG {lab_tag:.2}, ours {lab_ours:.2} (paper 2.25)");

    let rows = fig08::run(scale, 0xF1608);
    let t = fig08::table(&rows);
    t.print();
    t.write_csv("fig08_freq_load");

    let f9a = fig09::run(0, scale, 0xF1609A);
    fig09::table("Figure 9(a): false negatives", &f9a).print();
    fig09::table("Figure 9(a): false negatives", &f9a).write_csv("fig09a_false_negatives");
    let f9b = fig09::run(2, scale, 0xF1609B);
    fig09::table("Figure 9(b): with retransmissions", &f9b).print();
    fig09::table("Figure 9(b): with retransmissions", &f9b)
        .write_csv("fig09b_false_negatives_retx");
    let f9c = fig09::run_regional(scale, 0xF1609C);
    fig09::table("§7.4.3 ext: Regional(p, 0.05)", &f9c).print();
    fig09::table("§7.4.3 ext: Regional(p, 0.05)", &f9c)
        .write_csv("fig09c_false_negatives_regional");
    let f9d = fig09d::run(scale, 0xF1609D);
    fig09::table("Figure 9(d) ext: windowed false negatives", &f9d).print();
    fig09::table("Figure 9(d) ext: windowed false negatives", &f9d)
        .write_csv("fig09d_false_negatives_windowed");

    let lab = labdata_sum::run(scale, 0x1AB5);
    labdata_sum::table(&lab).print();
    labdata_sum::table(&lab).write_csv("labdata_sum");

    let rows = tab01::run(scale, 0x7AB01);
    tab01::table(&rows).print();
    tab01::table(&rows).write_csv("tab01_comparison");

    let rows = stream_windows::run(scale, 0x57E2EA);
    stream_windows::table(&rows).print();
    stream_windows::table(&rows).write_csv("stream_windows");

    let cells = fig_quantiles::run(scale, 0xF1610);
    fig_quantiles::table(&cells).print();
    fig_quantiles::table(&cells).write_csv("quantiles");

    let rows = churn::run(scale, 0xC4012);
    churn::table(&rows).print();
    churn::table(&rows).write_csv("churn");

    ablation::signal_ablation(scale, 0xAB1A).print();
    ablation::tree_construction_ablation(scale, 0xAB1B).print();
    ablation::damping_ablation(scale, 0xAB1C).print();

    println!(
        "\nAll experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
