//! Service-layer throughput smoke: multiplexes a sweep of tenant
//! counts over a sweep of worker counts through the
//! [`ServiceRuntime`], measuring aggregate **tenant-epochs/sec** and
//! the p50/p99 **report-drain latency** (emission to drain), and writes
//! the numbers to `results/bench_service.json` so CI can gate the
//! hosting layer alongside the engine.
//!
//! Each tenant is a complete independent world — its own ~30-sensor
//! network, scheme (rotating TAG / TD / TD-Coarse), loss rate, and a
//! windowed Sum stream query — submitted with a `run_until` epoch
//! budget and drained to completion. Outboxes are sized to the full
//! report budget so the sweep measures pure multiplexing throughput,
//! not backpressure parking (`reports_dropped` and parking are still
//! asserted to be zero).
//!
//! The JSON is flat (string keys → numbers) for the same `jq`-simple
//! gate parser as `bench_engine.json`. Per-point keys are prefixed
//! `t{tenants}_w{workers}_`; the headline gate key
//! `tenant_epochs_per_sec` is the best epochs/sec over the sweep.
//! Respects `TD_SCALE=smoke|paper` (smoke by default, so CI sweeps
//! 16/64/256 tenants on 1–2 workers; paper sweeps 100/1k/5k on 1/4/8).

use std::time::{Duration, Instant};

use td_bench::json::{num, JsonObject};
use td_bench::report::Table;
use td_bench::Scale;
use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_service::{ServiceRuntime, Tenant, TenantHandle, TenantPhase};
use td_stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings};
use tributary_delta::session::{Scheme, SessionBuilder};

/// Per-tenant world size: small on purpose — the subject under test is
/// the multiplexing layer, not epoch execution.
const SENSORS: usize = 30;
const WARMUP: u64 = 2;
/// Measured epochs per tenant; one sliding-window report each.
const EPOCHS: u64 = 10;

fn tenant_scheme(i: u64) -> Scheme {
    [Scheme::Tag, Scheme::Td, Scheme::TdCoarse][(i % 3) as usize]
}

fn make_stream(i: u64) -> (StreamSession, Vec<u64>) {
    let net = Synthetic::small(SENSORS).build(0xBE5E ^ i);
    let mut rng = rng_from_seed(0xCAFE ^ i);
    let session = SessionBuilder::new(tenant_scheme(i)).build(&net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, WARMUP));
    let _ = stream.register(
        StreamQuery::scalar(td_aggregates::sum::Sum::default())
            .window(WindowSpec::sliding(4, 1), EpochMerge::Add),
    );
    let readings = vec![1 + i % 50; net.len()];
    (stream, readings)
}

fn make_tenant(i: u64) -> Tenant {
    let (stream, readings) = make_stream(i);
    Tenant::builder(
        stream,
        FixedReadings(readings),
        Global::new(0.05 + 0.1 * ((i % 3) as f64)),
    )
    .seed(i)
    .run_until(WARMUP + EPOCHS)
    // Full report budget fits: the sweep measures multiplexing, not
    // parking.
    .outbox_capacity((EPOCHS + 4) as usize)
    .build()
}

struct Point {
    tenants: usize,
    workers: usize,
    epochs_per_sec: f64,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One sweep point: build `tenants` tenants (untimed), submit them all
/// to a fresh `workers`-worker runtime, and drain every tenant to its
/// pause, timing submission-to-last-drain.
fn run_point(tenants: usize, workers: usize) -> Point {
    let built: Vec<Tenant> = (0..tenants).map(|i| make_tenant(i as u64)).collect();
    let runtime = ServiceRuntime::new(workers);
    let t0 = Instant::now();
    let handles: Vec<TenantHandle> = built.into_iter().map(|t| runtime.submit(t)).collect();

    let mut waits: Vec<Duration> = Vec::new();
    let mut done = vec![false; handles.len()];
    let mut remaining = handles.len();
    while remaining > 0 {
        let mut progressed = false;
        for (h, finished) in handles.iter().zip(&mut done) {
            if *finished {
                continue;
            }
            let got = h.drain(64);
            progressed |= !got.is_empty();
            waits.extend(got.iter().map(|r| r.waited));
            let st = h.status();
            if st.phase == TenantPhase::Paused && st.queued_reports == 0 {
                *finished = true;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = runtime.shutdown();
    println!("  {stats}");
    assert_eq!(stats.reports_dropped, 0, "service dropped reports: {stats}");
    assert_eq!(
        stats.parks, 0,
        "outbox budget miscalculated — parking skews the sweep: {stats}"
    );
    assert_eq!(
        stats.epochs_driven,
        tenants as u64 * (WARMUP + EPOCHS),
        "a tenant ran a wrong epoch count: {stats}"
    );
    assert_eq!(waits.len(), tenants * EPOCHS as usize, "missing reports");

    waits.sort();
    Point {
        tenants,
        workers,
        epochs_per_sec: stats.epochs_driven as f64 / elapsed.max(1e-9),
        p50: percentile(&waits, 0.50),
        p99: percentile(&waits, 0.99),
    }
}

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    let paper = scale.sensors >= Scale::paper().sensors;
    let (tenant_counts, worker_counts): (&[usize], &[usize]) = if paper {
        (&[100, 1000, 5000], &[1, 4, 8])
    } else {
        (&[16, 64, 256], &[1, 2])
    };
    let t0 = Instant::now();

    // A serial reference tenant, stepped inline: the log line every
    // sweep point's numbers should be read against (and the engine's
    // own one-line Displays at work).
    let (mut stream, readings) = make_stream(0);
    let workload = FixedReadings(readings);
    let model = Global::new(0.05);
    let mut rng = td_service::tenant_rng(0);
    let mut reference_reports = 0usize;
    for _ in 0..WARMUP + EPOCHS {
        reference_reports += stream.step(&workload, &model, &mut rng).len();
    }
    println!(
        "reference tenant ({} epochs, {} reports):",
        WARMUP + EPOCHS,
        reference_reports
    );
    println!("  comm: {}", stream.session().stats());
    println!("  plan cache: {}", stream.driver().plan_stats());

    let mut points = Vec::new();
    for &tenants in tenant_counts {
        for &workers in worker_counts {
            println!("sweep point: {tenants} tenants on {workers} workers");
            points.push(run_point(tenants, workers));
        }
    }

    let mut table = Table::new(
        "Service multiplexing: tenant-epochs/sec and report-drain latency",
        &[
            "tenants",
            "workers",
            "epochs/sec",
            "drain p50 us",
            "drain p99 us",
        ],
    );
    for p in &points {
        table.row(vec![
            p.tenants.to_string(),
            p.workers.to_string(),
            format!("{:.0}", p.epochs_per_sec),
            format!("{:.0}", p.p50.as_secs_f64() * 1e6),
            format!("{:.0}", p.p99.as_secs_f64() * 1e6),
        ]);
    }
    table.print();

    let headline = points
        .iter()
        .map(|p| p.epochs_per_sec)
        .fold(0.0f64, f64::max);
    let mut obj = JsonObject::new();
    obj.set("sensors", SENSORS)
        .set("warmup", WARMUP)
        .set("epochs_per_tenant", EPOCHS);
    for p in &points {
        let key = format!("t{}_w{}", p.tenants, p.workers);
        obj.set(&format!("{key}_epochs_per_sec"), num(p.epochs_per_sec, 1));
        obj.set(
            &format!("{key}_drain_p50_us"),
            num(p.p50.as_secs_f64() * 1e6, 1),
        );
        obj.set(
            &format!("{key}_drain_p99_us"),
            num(p.p99.as_secs_f64() * 1e6, 1),
        );
    }
    obj.set("tenant_epochs_per_sec", num(headline, 1));
    obj.set("telemetry_compiled", u64::from(td_telemetry::compiled()));
    let json = obj.to_string_pretty();
    print!("{json}");

    td_bench::json::write_results_text("bench_service.json", &json);
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
