//! Regenerates the quantile sweep: rank error versus communication for
//! GK and q-digest quantile queries across all four aggregation schemes,
//! two loss shapes, and precision-gradient versus uniform per-level
//! budgets — `results/quantiles.csv`.

use td_bench::experiments::fig_quantiles;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    println!(
        "Quantile sweep — eps={}, loss={}, sensors={}",
        fig_quantiles::EPS,
        fig_quantiles::LOSS,
        scale.sensors
    );
    let cells = fig_quantiles::run(scale, 0xF1610);
    let t = fig_quantiles::table(&cells);
    t.print();
    let path = t.write_csv("quantiles");
    assert!(path.is_some(), "failed to write results/quantiles.csv");
    let violations = fig_quantiles::ordering_violations(&cells);
    assert!(
        violations.is_empty(),
        "precision-gradient ordering violated: {violations:?}"
    );
    println!(
        "\npaper shape: on tree-bearing schemes the geometric gradient\n\
         undercuts the uniform per-level budget on bytes at the same final\n\
         rank error; SD is flat (its delta floods exact per-origin parts)"
    );
}
