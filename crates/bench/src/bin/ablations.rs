//! Ablation studies of the reproduction's design choices (see DESIGN.md):
//! adaptation signal fidelity, the §6.1.3 tree construction, and
//! oscillation damping.

use td_bench::experiments::ablation;
use td_bench::Scale;

fn main() {
    let scale = Scale::from_env_or(Scale::paper());
    println!("Ablations — sensors={}", scale.sensors);
    let t = ablation::signal_ablation(scale, 0xAB1A);
    t.print();
    t.write_csv("ablation_signal");
    let t = ablation::tree_construction_ablation(scale, 0xAB1B);
    t.print();
    t.write_csv("ablation_tree");
    let t = ablation::damping_ablation(scale, 0xAB1C);
    t.print();
    t.write_csv("ablation_damping");
}
