//! Regenerates Table 2: the example 2-dominating tree Te vs the regular
//! binary tree T2.

use td_bench::experiments::tab02;

fn main() {
    let t = tab02::table();
    t.print();
    t.write_csv("tab02_domination");
    println!("\n{}", tab02::summary());
}
