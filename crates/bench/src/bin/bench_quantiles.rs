//! Quantile-bundle throughput bench (`results/bench_quantiles.json`).
//!
//! Times the bundle engine answering **both** quantile families at once
//! — a GK and a q-digest `QuantileProtocol` registered on one
//! `QuerySet`, so each epoch is a single TD traversal carrying two
//! summary slots — over a lossy network, end to end through
//! `Session::run_set`. The headline `quantile_epochs_per_sec` is the
//! steady-state bundled rate and is gated by `perf_gate` against the
//! committed baseline, like the engine/service/stream bins.
//!
//! The JSON schema is flat (string keys → numbers) for `jq` and the
//! perf gate's `parse_flat_json`, like the other bench JSONs.

use std::time::Instant;

use td_bench::json::{num, JsonObject};
use td_bench::Scale;
use td_netsim::loss::Global;
use td_netsim::network::Network;
use td_netsim::node::Position;
use td_netsim::rng::substream;
use td_quantiles::gradient::MinTotalLoad;
use td_quantiles::{GkSummary, QDigest};
use td_topology::domination::domination_factor;
use tributary_delta::protocol::{QuantileOutput, QuantileProtocol};
use tributary_delta::query::QuerySet;
use tributary_delta::session::{Scheme, SessionBuilder};

/// Final rank-error tolerance shared by both families.
const EPS: f64 = 0.05;
/// q-digest domain width; readings stay inside it.
const QD_BITS: u32 = 16;
/// Loss rate for the steady-state measurement.
const LOSS: f64 = 0.1;
/// Reps per timed quantity; the reported figure is the best rep.
const REPS: usize = 3;

fn main() {
    let scale = Scale::from_env_or(Scale::smoke());
    let t0 = Instant::now();

    let mut rng = substream(0xBE7C5, 0x01);
    let side = (scale.sensors as f64).sqrt().max(10.0);
    let net = Network::random_connected(
        scale.sensors,
        side,
        side,
        Position::new(side / 2.0, side / 2.0),
        2.5,
        &mut rng,
    );
    let values: Vec<u64> = (0..net.len() as u64)
        .map(|i| (i * 12_289 + 7) % 60_000)
        .collect();
    let model = Global::new(LOSS);

    let epochs = (scale.epochs * 4).max(40);
    let mut best = 0.0f64;
    let mut med = (0u64, 0u64);
    for rep in 0..REPS {
        let mut rng = substream(0xBE7C5, 0x10 + rep as u64);
        let mut session = scale
            .configure(SessionBuilder::new(Scheme::Td))
            .build(&net, &mut rng);
        let gradient = {
            let d = session
                .topology()
                .map(|t| domination_factor(t.tree(), 0.05))
                .unwrap_or(2.0)
                .max(1.1);
            MinTotalLoad::new(EPS, d)
        };
        let timer = Instant::now();
        for epoch in 0..epochs {
            let gk_p = QuantileProtocol::gk(gradient, &values);
            let qd_p = QuantileProtocol::qdigest(QD_BITS, gradient, &values);
            let mut set = QuerySet::new();
            let h_gk = set.register(&gk_p);
            let h_qd = set.register(&qd_p);
            let mut rec = session.run_set(&set, &model, epoch, &mut rng);
            let gk: QuantileOutput<GkSummary> = rec.answers.take(h_gk);
            let qd: QuantileOutput<QDigest> = rec.answers.take(h_qd);
            med = (
                gk.summary.quantile(0.5).unwrap_or(0),
                qd.summary.quantile(0.5).unwrap_or(0),
            );
            std::hint::black_box(&med);
        }
        let dt = timer.elapsed().as_secs_f64().max(1e-9);
        best = best.max(epochs as f64 / dt);
    }
    println!(
        "quantile bundle (GK + q-digest, {} sensors, {LOSS} loss): \
         {best:.1} epochs/s over {epochs} epochs (medians {med:?})",
        net.len()
    );

    let mut obj = JsonObject::new();
    obj.set("telemetry_compiled", u64::from(td_telemetry::compiled()))
        .set("quantile_epochs_per_sec", num(best, 1))
        .set("quantile_bundle_epochs", num(epochs as f64, 0));
    assert!(best > 0.0, "no epochs timed");

    let json = obj.to_string_pretty();
    print!("{json}");
    td_bench::json::write_results_text("bench_quantiles.json", &json);
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
