//! The CI perf gate: compares a fresh `results/bench_engine.json`
//! against the committed baseline and fails on a regression beyond the
//! configured threshold.
//!
//! `bench_engine` writes a deliberately flat JSON object (string keys →
//! numbers), so no JSON dependency is needed: [`parse_flat_json`] is a
//! ~30-line scanner over exactly that shape. The gate compares one key
//! (throughput by default) and tolerates the baseline being missing —
//! the first run on a fresh branch has nothing to compare against.

use std::collections::BTreeMap;

/// Parse a flat `{"key": number, ...}` JSON object. Non-numeric values
/// and nesting are rejected — the gate guards one known file shape, and
/// failing loudly on anything else beats misreading it.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry without ':': {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {entry:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("non-numeric value for {key:?}: {entry:?}"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// What the gate decided.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateOutcome {
    /// The baseline's value for the gated key.
    pub baseline: f64,
    /// The fresh run's value.
    pub fresh: f64,
    /// Fractional regression (positive = fresh is worse; throughput
    /// keys regress downward).
    pub regression: f64,
    /// Whether the regression exceeds the threshold.
    pub failed: bool,
}

/// Gate `key` (a higher-is-better throughput metric) between two flat
/// JSON documents: fail when the fresh value has dropped by more than
/// `max_regression` (e.g. `0.2` = 20%) relative to the baseline.
/// Single-key strict form of [`check_all`]: a key absent from either
/// document is an error here.
pub fn check(
    baseline_json: &str,
    fresh_json: &str,
    key: &str,
    max_regression: f64,
) -> Result<GateOutcome, String> {
    let outcomes = check_all(baseline_json, fresh_json, &[key], max_regression)?;
    match outcomes.into_iter().next() {
        Some((_, KeyOutcome::Checked(out))) => Ok(out),
        Some((_, KeyOutcome::NewKey)) => Err(format!("baseline has no key {key:?}")),
        None => unreachable!("check_all returns one outcome per key"),
    }
}

/// One gated key's result in a [`check_all`] run.
#[derive(Clone, Debug, PartialEq)]
pub enum KeyOutcome {
    /// The key was compared.
    Checked(GateOutcome),
    /// The baseline predates this key (a newly introduced metric):
    /// nothing to compare against, passes with a notice — the key is
    /// gated from the next baseline refresh onward.
    NewKey,
}

/// Gate several throughput keys between the same two documents: each
/// key fails independently on a drop beyond `max_regression`. A key
/// missing from the **baseline** passes as [`KeyOutcome::NewKey`]
/// (metrics are added over time; the committed baseline catches up at
/// its next refresh); a key missing from the **fresh** run is an error —
/// the bench must always emit everything it gates.
pub fn check_all(
    baseline_json: &str,
    fresh_json: &str,
    keys: &[&str],
    max_regression: f64,
) -> Result<Vec<(String, KeyOutcome)>, String> {
    let baseline = parse_flat_json(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let fresh = parse_flat_json(fresh_json).map_err(|e| format!("fresh run: {e}"))?;
    keys.iter()
        .map(|&key| {
            let fresh_value = *fresh
                .get(key)
                .ok_or_else(|| format!("fresh run has no key {key:?}"))?;
            let outcome = match baseline.get(key) {
                None => KeyOutcome::NewKey,
                Some(&b) if b <= 0.0 => {
                    return Err(format!("baseline {key} is non-positive ({b})"))
                }
                Some(&b) => {
                    let regression = 1.0 - fresh_value / b;
                    KeyOutcome::Checked(GateOutcome {
                        baseline: b,
                        fresh: fresh_value,
                        regression,
                        failed: regression > max_regression,
                    })
                }
            };
            Ok((key.to_string(), outcome))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "sensors": 150,
  "epochs_per_sec_pool": 250.0,
  "plan_reuse_ratio": 1.07
}"#;

    #[test]
    fn parses_the_bench_engine_shape() {
        let m = parse_flat_json(SAMPLE).unwrap();
        assert_eq!(m["sensors"], 150.0);
        assert_eq!(m["epochs_per_sec_pool"], 250.0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_flat_json("[1, 2]").is_err());
        assert!(parse_flat_json(r#"{"a": "text"}"#).is_err());
        assert!(parse_flat_json(r#"{a: 1}"#).is_err());
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let fresh_ok = r#"{"epochs_per_sec_pool": 210.0}"#;
        let out = check(SAMPLE, fresh_ok, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(!out.failed, "16% drop is within the 20% budget");
        assert!((out.regression - 0.16).abs() < 1e-9);

        let fresh_bad = r#"{"epochs_per_sec_pool": 150.0}"#;
        let out = check(SAMPLE, fresh_bad, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(out.failed, "40% drop must fail");

        // Improvements are negative regressions and always pass.
        let fresh_fast = r#"{"epochs_per_sec_pool": 400.0}"#;
        let out = check(SAMPLE, fresh_fast, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(!out.failed);
        assert!(out.regression < 0.0);
    }

    #[test]
    fn gate_reports_missing_keys() {
        assert!(check(SAMPLE, "{}", "epochs_per_sec_pool", 0.2).is_err());
        assert!(check(SAMPLE, SAMPLE, "nope", 0.2).is_err());
    }

    #[test]
    fn check_all_gates_each_key_independently() {
        let fresh = r#"{
  "epochs_per_sec_pool": 240.0,
  "adaptation_epochs_per_sec_patch": 900.0
}"#;
        let out = check_all(
            SAMPLE,
            fresh,
            &["epochs_per_sec_pool", "adaptation_epochs_per_sec_patch"],
            0.2,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // The old key is compared against its baseline...
        match &out[0].1 {
            KeyOutcome::Checked(o) => assert!(!o.failed),
            other => panic!("expected a checked outcome, got {other:?}"),
        }
        // ...the new key has no baseline yet and passes as NewKey.
        assert_eq!(out[1].1, KeyOutcome::NewKey);

        // A regression on any gated key is reported as failed.
        let regressed = r#"{
  "epochs_per_sec_pool": 100.0,
  "adaptation_epochs_per_sec_patch": 900.0
}"#;
        let out = check_all(SAMPLE, regressed, &["epochs_per_sec_pool"], 0.2).unwrap();
        match &out[0].1 {
            KeyOutcome::Checked(o) => assert!(o.failed),
            other => panic!("expected a checked outcome, got {other:?}"),
        }

        // A gated key absent from the fresh run is a hard error.
        assert!(check_all(SAMPLE, "{}", &["epochs_per_sec_pool"], 0.2).is_err());
    }

    #[test]
    fn round_trips_the_shared_encoder() {
        // The bench binaries write their flat results files through
        // `td_bench::json` (the shared telemetry encoder); this pins
        // that the gate's scanner reads that exact shape back.
        use crate::json::{num, JsonObject};
        let mut obj = JsonObject::new();
        obj.set("sensors", 150u64)
            .set("epochs_per_sec_pool", num(250.0, 1))
            .set("plan_reuse_ratio", num(1.0749, 3))
            .set("telemetry_compiled", 1u64);
        let m = parse_flat_json(&obj.to_string_pretty()).unwrap();
        assert_eq!(m["sensors"], 150.0);
        assert_eq!(m["epochs_per_sec_pool"], 250.0);
        assert_eq!(m["plan_reuse_ratio"], 1.075);
        assert_eq!(m["telemetry_compiled"], 1.0);
        assert_eq!(m.len(), 4);
    }
}
