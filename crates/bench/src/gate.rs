//! The CI perf gate: compares a fresh `results/bench_engine.json`
//! against the committed baseline and fails on a regression beyond the
//! configured threshold.
//!
//! `bench_engine` writes a deliberately flat JSON object (string keys →
//! numbers), so no JSON dependency is needed: [`parse_flat_json`] is a
//! ~30-line scanner over exactly that shape. The gate compares one key
//! (throughput by default) and tolerates the baseline being missing —
//! the first run on a fresh branch has nothing to compare against.

use std::collections::BTreeMap;

/// Parse a flat `{"key": number, ...}` JSON object. Non-numeric values
/// and nesting are rejected — the gate guards one known file shape, and
/// failing loudly on anything else beats misreading it.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry without ':': {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {entry:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("non-numeric value for {key:?}: {entry:?}"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// What the gate decided.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateOutcome {
    /// The baseline's value for the gated key.
    pub baseline: f64,
    /// The fresh run's value.
    pub fresh: f64,
    /// Fractional regression (positive = fresh is worse; throughput
    /// keys regress downward).
    pub regression: f64,
    /// Whether the regression exceeds the threshold.
    pub failed: bool,
}

/// Gate `key` (a higher-is-better throughput metric) between two flat
/// JSON documents: fail when the fresh value has dropped by more than
/// `max_regression` (e.g. `0.2` = 20%) relative to the baseline.
pub fn check(
    baseline_json: &str,
    fresh_json: &str,
    key: &str,
    max_regression: f64,
) -> Result<GateOutcome, String> {
    let baseline = *parse_flat_json(baseline_json)
        .map_err(|e| format!("baseline: {e}"))?
        .get(key)
        .ok_or_else(|| format!("baseline has no key {key:?}"))?;
    let fresh = *parse_flat_json(fresh_json)
        .map_err(|e| format!("fresh run: {e}"))?
        .get(key)
        .ok_or_else(|| format!("fresh run has no key {key:?}"))?;
    if baseline <= 0.0 {
        return Err(format!("baseline {key} is non-positive ({baseline})"));
    }
    let regression = 1.0 - fresh / baseline;
    Ok(GateOutcome {
        baseline,
        fresh,
        regression,
        failed: regression > max_regression,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "sensors": 150,
  "epochs_per_sec_pool": 250.0,
  "plan_reuse_ratio": 1.07
}"#;

    #[test]
    fn parses_the_bench_engine_shape() {
        let m = parse_flat_json(SAMPLE).unwrap();
        assert_eq!(m["sensors"], 150.0);
        assert_eq!(m["epochs_per_sec_pool"], 250.0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_flat_json("[1, 2]").is_err());
        assert!(parse_flat_json(r#"{"a": "text"}"#).is_err());
        assert!(parse_flat_json(r#"{a: 1}"#).is_err());
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let fresh_ok = r#"{"epochs_per_sec_pool": 210.0}"#;
        let out = check(SAMPLE, fresh_ok, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(!out.failed, "16% drop is within the 20% budget");
        assert!((out.regression - 0.16).abs() < 1e-9);

        let fresh_bad = r#"{"epochs_per_sec_pool": 150.0}"#;
        let out = check(SAMPLE, fresh_bad, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(out.failed, "40% drop must fail");

        // Improvements are negative regressions and always pass.
        let fresh_fast = r#"{"epochs_per_sec_pool": 400.0}"#;
        let out = check(SAMPLE, fresh_fast, "epochs_per_sec_pool", 0.2).unwrap();
        assert!(!out.failed);
        assert!(out.regression < 0.0);
    }

    #[test]
    fn gate_reports_missing_keys() {
        assert!(check(SAMPLE, "{}", "epochs_per_sec_pool", 0.2).is_err());
        assert!(check(SAMPLE, SAMPLE, "nope", 0.2).is_err());
    }
}
