//! # td-bench — regenerators for every table and figure in §7
//!
//! Each experiment lives in [`experiments`] as a plain function taking a
//! [`Scale`], so the same code runs at paper scale (the `src/bin`
//! binaries) and at smoke scale (the Criterion-adjacent `benches/`
//! targets executed by `cargo bench`). Results are printed as aligned
//! tables and written as CSV under `results/`.
//!
//! | Regenerator | Paper artifact |
//! |---|---|
//! | `fig02_count_rms` | Figure 2 (Count RMS, loss 0–0.4) |
//! | `fig04_delta_evolution` | Figure 4 (delta region under Regional loss) |
//! | `fig05_sum_rms` | Figures 5(a)/5(b) (Sum RMS, Global/Regional) |
//! | `fig06_timeline` | Figure 6(a–c) (relative error timeline) |
//! | `fig07_domination` | Figure 7(a)/(b) (domination factor sweeps) |
//! | `fig08_freq_load` | Figure 8 (frequent-items loads) |
//! | `fig09_freq_loss` | Figure 9(a)/(b) (false negatives vs loss) |
//! | `tab01_comparison` | Table 1 (quantitative backing) |
//! | `tab02_domination` | Table 2 (example 2-dominating tree) |
//! | `labdata_sum` | §7.3's LabData RMS numbers |
//! | `ablation_signal` | exact vs in-band adaptation signal (extension) |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod json;
pub mod report;

use tributary_delta::session::SessionBuilder;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Independent repetitions (different seeds) averaged per point.
    pub runs: u64,
    /// Measured epochs per run (after warm-up).
    pub epochs: u64,
    /// Warm-up epochs before measurement ("data collection begins only
    /// after the aggregation topologies become stable", §7.1).
    pub warmup: u64,
    /// Sensors in the Synthetic deployment.
    pub sensors: usize,
    /// Items per node in frequent-items workloads.
    pub items_per_node: usize,
    /// Intra-epoch worker-count override for every session the
    /// experiments build (`None` = leave the session default: all
    /// cores, sequential below the small-network floor). Filled from
    /// `TD_WORKERS` by [`Scale::from_env_or`]; bit-identical results on
    /// any value.
    pub workers: Option<usize>,
}

impl Scale {
    /// The paper's configuration (§7.1): 600 sensors, 100 measured
    /// epochs, adaptation every 10 epochs (warm-up lets the delta settle).
    pub fn paper() -> Self {
        Scale {
            runs: 3,
            epochs: 100,
            warmup: 100,
            sensors: 600,
            items_per_node: 500,
            workers: None,
        }
    }

    /// A fast configuration for `cargo bench` smoke regeneration.
    pub fn smoke() -> Self {
        Scale {
            runs: 1,
            epochs: 30,
            warmup: 40,
            sensors: 150,
            items_per_node: 120,
            workers: None,
        }
    }

    /// Scale selected by the `TD_SCALE` environment variable
    /// (`paper` | `smoke`; unset falls back to `default`).
    ///
    /// An unrecognized value is almost always a typo that would silently
    /// run a multi-minute paper-scale job (or publish smoke-scale
    /// numbers as if they were full-scale), so it is reported on stderr
    /// before falling back.
    pub fn from_env_or(default: Scale) -> Scale {
        let mut scale = Scale::from_setting(std::env::var("TD_SCALE").ok().as_deref(), default);
        scale.workers = workers_from_env().or(scale.workers);
        scale
    }

    /// [`Scale::from_env_or`] with the setting passed in (`None` = the
    /// variable is unset) — the pure core, separated so it can be tested
    /// without mutating process environment (a data race under the
    /// parallel test harness).
    /// Apply this scale's worker override (if any) to a session under
    /// construction. Experiments route every [`SessionBuilder`] through
    /// this so the one `TD_WORKERS` knob reaches all of them; with no
    /// override the builder passes through untouched.
    pub fn configure(&self, builder: SessionBuilder) -> SessionBuilder {
        match self.workers {
            Some(w) => builder.workers(w),
            None => builder,
        }
    }

    fn from_setting(setting: Option<&str>, default: Scale) -> Scale {
        match setting {
            Some("smoke") => Scale::smoke(),
            Some("paper") => Scale::paper(),
            Some(other) => {
                eprintln!(
                    "warning: unrecognized TD_SCALE={other:?} (expected \"smoke\" or \"paper\"); \
                     falling back to the default scale (sensors={}, epochs={}, runs={})",
                    default.sensors, default.epochs, default.runs
                );
                default
            }
            None => default,
        }
    }
}

/// Intra-epoch worker count selected by the `TD_WORKERS` environment
/// variable, for benches and `run_all`: `Some(n)` to pass to
/// `SessionBuilder::workers` (`0` = all cores, `1` = sequential),
/// `None` when unset — callers then leave the session default alone.
/// Results are bit-identical on any value, so this only shapes
/// wall-clock and the machine's load.
pub fn workers_from_env() -> Option<usize> {
    workers_from_setting(std::env::var("TD_WORKERS").ok().as_deref())
}

/// [`workers_from_env`] with the setting passed in (`None` = unset) —
/// the pure core, separated for the same env-race-free testability as
/// [`Scale::from_setting`]. An unparsable value warns on stderr and
/// falls back to unset, mirroring `TD_SCALE`.
fn workers_from_setting(setting: Option<&str>) -> Option<usize> {
    let raw = setting?;
    match raw.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!(
                "warning: unrecognized TD_WORKERS={raw:?} (expected a worker count; \
                 0 = all cores, 1 = sequential); leaving the default worker count"
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.sensors, 600);
        assert_eq!(p.epochs, 100);
        let s = Scale::smoke();
        assert!(s.sensors < p.sensors);
    }

    #[test]
    fn scale_setting_selects_and_survives_typos() {
        let default = Scale::smoke();
        assert_eq!(
            Scale::from_setting(Some("paper"), default).sensors,
            Scale::paper().sensors
        );
        assert_eq!(
            Scale::from_setting(Some("smoke"), Scale::paper()).sensors,
            Scale::smoke().sensors
        );
        // A typo falls back to the default (and warns on stderr).
        assert_eq!(
            Scale::from_setting(Some("papr"), Scale::paper()).sensors,
            Scale::paper().sensors
        );
        assert_eq!(Scale::from_setting(None, default).sensors, default.sensors);
    }

    #[test]
    fn workers_setting_parses_and_survives_typos() {
        assert_eq!(workers_from_setting(Some("8")), Some(8));
        assert_eq!(workers_from_setting(Some("0")), Some(0));
        // Garbage warns on stderr and leaves the default in place.
        assert_eq!(workers_from_setting(Some("all")), None);
        assert_eq!(workers_from_setting(Some("-2")), None);
        assert_eq!(workers_from_setting(None), None);
    }
}
