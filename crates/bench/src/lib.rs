//! # td-bench — regenerators for every table and figure in §7
//!
//! Each experiment lives in [`experiments`] as a plain function taking a
//! [`Scale`], so the same code runs at paper scale (the `src/bin`
//! binaries) and at smoke scale (the Criterion-adjacent `benches/`
//! targets executed by `cargo bench`). Results are printed as aligned
//! tables and written as CSV under `results/`.
//!
//! | Regenerator | Paper artifact |
//! |---|---|
//! | `fig02_count_rms` | Figure 2 (Count RMS, loss 0–0.4) |
//! | `fig04_delta_evolution` | Figure 4 (delta region under Regional loss) |
//! | `fig05_sum_rms` | Figures 5(a)/5(b) (Sum RMS, Global/Regional) |
//! | `fig06_timeline` | Figure 6(a–c) (relative error timeline) |
//! | `fig07_domination` | Figure 7(a)/(b) (domination factor sweeps) |
//! | `fig08_freq_load` | Figure 8 (frequent-items loads) |
//! | `fig09_freq_loss` | Figure 9(a)/(b) (false negatives vs loss) |
//! | `tab01_comparison` | Table 1 (quantitative backing) |
//! | `tab02_domination` | Table 2 (example 2-dominating tree) |
//! | `labdata_sum` | §7.3's LabData RMS numbers |
//! | `ablation_signal` | exact vs in-band adaptation signal (extension) |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod report;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Independent repetitions (different seeds) averaged per point.
    pub runs: u64,
    /// Measured epochs per run (after warm-up).
    pub epochs: u64,
    /// Warm-up epochs before measurement ("data collection begins only
    /// after the aggregation topologies become stable", §7.1).
    pub warmup: u64,
    /// Sensors in the Synthetic deployment.
    pub sensors: usize,
    /// Items per node in frequent-items workloads.
    pub items_per_node: usize,
}

impl Scale {
    /// The paper's configuration (§7.1): 600 sensors, 100 measured
    /// epochs, adaptation every 10 epochs (warm-up lets the delta settle).
    pub fn paper() -> Self {
        Scale {
            runs: 3,
            epochs: 100,
            warmup: 100,
            sensors: 600,
            items_per_node: 500,
        }
    }

    /// A fast configuration for `cargo bench` smoke regeneration.
    pub fn smoke() -> Self {
        Scale {
            runs: 1,
            epochs: 30,
            warmup: 40,
            sensors: 150,
            items_per_node: 120,
        }
    }

    /// Scale selected by the `TD_SCALE` environment variable
    /// (`paper` | `smoke`; unset falls back to `default`).
    ///
    /// An unrecognized value is almost always a typo that would silently
    /// run a multi-minute paper-scale job (or publish smoke-scale
    /// numbers as if they were full-scale), so it is reported on stderr
    /// before falling back.
    pub fn from_env_or(default: Scale) -> Scale {
        Scale::from_setting(std::env::var("TD_SCALE").ok().as_deref(), default)
    }

    /// [`Scale::from_env_or`] with the setting passed in (`None` = the
    /// variable is unset) — the pure core, separated so it can be tested
    /// without mutating process environment (a data race under the
    /// parallel test harness).
    fn from_setting(setting: Option<&str>, default: Scale) -> Scale {
        match setting {
            Some("smoke") => Scale::smoke(),
            Some("paper") => Scale::paper(),
            Some(other) => {
                eprintln!(
                    "warning: unrecognized TD_SCALE={other:?} (expected \"smoke\" or \"paper\"); \
                     falling back to the default scale (sensors={}, epochs={}, runs={})",
                    default.sensors, default.epochs, default.runs
                );
                default
            }
            None => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.sensors, 600);
        assert_eq!(p.epochs, 100);
        let s = Scale::smoke();
        assert!(s.sensors < p.sensors);
    }

    #[test]
    fn scale_setting_selects_and_survives_typos() {
        let default = Scale::smoke();
        assert_eq!(
            Scale::from_setting(Some("paper"), default).sensors,
            Scale::paper().sensors
        );
        assert_eq!(
            Scale::from_setting(Some("smoke"), Scale::paper()).sensors,
            Scale::smoke().sensors
        );
        // A typo falls back to the default (and warns on stderr).
        assert_eq!(
            Scale::from_setting(Some("papr"), Scale::paper()).sensors,
            Scale::paper().sensors
        );
        assert_eq!(Scale::from_setting(None, default).sensors, default.sensors);
    }
}
