//! Table printing and CSV output for the experiment regenerators.

use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned table with a title, printed to stdout and
/// optionally persisted as CSV under the workspace `results/` directory.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are displayed verbatim).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (what `print` writes to stdout).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV to `results/<name>.csv` (workspace root), returning
    /// the path. Errors are reported but not fatal (experiments should
    /// still print).
    pub fn write_csv(&self, name: &str) -> Option<PathBuf> {
        let path = results_dir().join(format!("{name}.csv"));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(path.parent().expect("has parent"))?;
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            writeln!(f, "{}", self.header.join(","))?;
            for row in &self.rows {
                writeln!(f, "{}", row.join(","))?;
            }
            f.flush()
        };
        match write() {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        }
    }
}

/// The workspace `results/` directory (relative to this crate's
/// manifest: `crates/bench/../../results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Format a float with 4 significant decimals for table cells.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["p", "long-header"]);
        t.row(vec!["0.1".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.contains("0.1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv-test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv("_csv_selftest").expect("writable");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }
}
