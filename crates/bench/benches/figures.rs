//! `cargo bench` regenerator: runs every table and figure of the paper at
//! smoke scale (set `TD_SCALE=paper` for the full-scale run, or use the
//! `run_all` binary). Not a Criterion harness — the deliverable is the
//! printed tables and the CSVs under `results/`.

use td_bench::experiments::{
    ablation, fig04, fig06, fig07, fig08, fig09, labdata_sum, rms, tab01, tab02,
};
use td_bench::Scale;

fn main() {
    // `cargo bench` passes --bench; ignore argv.
    let scale = Scale::from_env_or(Scale::smoke());
    let t0 = std::time::Instant::now();
    println!(
        "[figures] regenerating all paper artifacts at sensors={}, epochs={}, runs={}",
        scale.sensors, scale.epochs, scale.runs
    );

    tab02::table().print();
    println!("{}", tab02::summary());

    let points = rms::figure2(scale, 0xF1602);
    rms::table("Figure 2: RMS error of Count under Global(p)", &points).print();

    let a = rms::figure5a(scale, 0xF1605A);
    rms::table("Figure 5(a): Sum RMS under Global(p)", &a).print();
    let b = rms::figure5b(scale, 0xF1605B);
    rms::table("Figure 5(b): Sum RMS under Regional(p, 0.05)", &b).print();

    let snaps = fig04::run(scale, 0xF1604);
    fig04::table(&snaps).print();

    let timeline = fig06::run(scale, 0xF1606);
    fig06::phase_means(&timeline).print();

    let trials = 3;
    let d = fig07::density_sweep(trials, 0xF1607A);
    fig07::table("Figure 7(a): domination vs density", "density", &d).print();
    let w = fig07::width_sweep(trials, 0xF1607B);
    fig07::table("Figure 7(b): domination vs width", "width", &w).print();
    let (lab_tag, lab_ours) = fig07::labdata_factor(trials, 0xF1607C);
    println!("LabData domination: TAG {lab_tag:.2}, ours {lab_ours:.2} (paper 2.25)");

    let rows = fig08::run(scale, 0xF1608);
    fig08::table(&rows).print();

    let f9a = fig09::run(0, scale, 0xF1609A);
    fig09::table("Figure 9(a): false negatives", &f9a).print();
    let f9b = fig09::run(2, scale, 0xF1609B);
    fig09::table("Figure 9(b): with retransmissions", &f9b).print();
    let f9c = fig09::run_regional(scale, 0xF1609C);
    fig09::table("§7.4.3 ext: Regional(p, 0.05)", &f9c).print();

    let lab = labdata_sum::run(scale, 0x1AB5);
    labdata_sum::table(&lab).print();

    let rows = tab01::run(scale, 0x7AB01);
    tab01::table(&rows).print();

    ablation::signal_ablation(scale, 0xAB1A).print();
    ablation::tree_construction_ablation(scale, 0xAB1B).print();
    ablation::damping_ablation(scale, 0xAB1C).print();

    println!(
        "[figures] all artifacts regenerated in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
