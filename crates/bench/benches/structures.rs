//! Criterion micro-benchmarks for the hot data structures: the sketches,
//! summaries, and fusion operations every epoch exercises thousands of
//! times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use td_frequent::items::ItemBag;
use td_frequent::multipath::{fuse, generate_from_bag, MultipathConfig};
use td_frequent::summary::FreqSummary;
use td_netsim::node::NodeId;
use td_quantiles::summary::GkSummary;
use td_sketches::counter::FmFactory;
use td_sketches::fm::FmSketch;
use td_sketches::kmv::Kmv;
use td_sketches::rle;
use td_sketches::sample::MinHashSample;

fn bench_fm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fm");
    g.bench_function("insert_distinct_x100", |b| {
        b.iter(|| {
            let mut s = FmSketch::default_config();
            for i in 0..100u64 {
                s.insert_distinct(black_box(i));
            }
            s
        })
    });
    g.bench_function("insert_value_10k", |b| {
        b.iter(|| {
            let mut s = FmSketch::default_config();
            s.insert_value(black_box(7), black_box(10_000));
            s
        })
    });
    let mut a = FmSketch::default_config();
    let mut bm = FmSketch::default_config();
    for i in 0..500u64 {
        a.insert_distinct(i);
        bm.insert_distinct(i + 250);
    }
    g.bench_function("merge", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&bm));
            x
        })
    });
    g.bench_function("estimate", |b| b.iter(|| black_box(&a).estimate()));
    g.bench_function("rle_encode", |b| b.iter(|| rle::encode(black_box(&a))));
    let encoded = rle::encode(&a);
    g.bench_function("rle_decode", |b| {
        b.iter(|| rle::decode(black_box(&encoded), 40).unwrap())
    });
    g.finish();
}

fn bench_kmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmv");
    g.bench_function("insert_x1000", |b| {
        b.iter(|| {
            let mut s = Kmv::new(64);
            for i in 0..1000u64 {
                s.insert_hash(td_sketches::hash::keyed(1, black_box(i)));
            }
            s
        })
    });
    g.bench_function("add_occurrences_1M", |b| {
        b.iter(|| {
            let mut s = Kmv::new(64);
            s.add_occurrences(black_box(9), black_box(1_000_000));
            s
        })
    });
    g.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let mut a = MinHashSample::new(64);
    let mut b2 = MinHashSample::new(64);
    for i in 0..500u64 {
        a.insert(td_sketches::hash::keyed(2, i), i);
        b2.insert(td_sketches::hash::keyed(2, i + 250), i);
    }
    c.bench_function("minhash/merge", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&b2));
            x
        })
    });
}

fn bench_freq_summary(c: &mut Criterion) {
    let mut g = c.benchmark_group("freq_summary");
    let bags: Vec<ItemBag> = (0..8)
        .map(|k| ItemBag::from_counts((0..200u64).map(|i| (i * 8 + k, 1 + i % 5))))
        .collect();
    let children: Vec<FreqSummary> = bags.iter().map(FreqSummary::local).collect();
    g.bench_function("algorithm1_combine_8x200", |b| {
        b.iter(|| {
            FreqSummary::combine(black_box(&children), &FreqSummary::empty(), black_box(0.01))
        })
    });
    g.finish();
}

fn bench_multipath_fuse(c: &mut Criterion) {
    let cfg = MultipathConfig::new(0.01, 2.0, 1 << 20, FmFactory { bitmaps: 16 });
    // Equal totals so both synopses land in the same class (Algorithm 2
    // only fuses same-class synopses).
    let bag_a = ItemBag::from_counts((0..100u64).map(|i| (i, 10)));
    let bag_b = ItemBag::from_counts((50..150u64).map(|i| (i, 10)));
    let a = generate_from_bag(&cfg, NodeId(1), &bag_a).unwrap();
    let b2 = generate_from_bag(&cfg, NodeId(2), &bag_b).unwrap();
    assert_eq!(a.class, b2.class);
    c.bench_function("multipath/algorithm2_fuse_100items", |b| {
        b.iter(|| fuse(&cfg, black_box(a.clone()), black_box(b2.clone())))
    });
}

fn bench_gk(c: &mut Criterion) {
    let mut g = c.benchmark_group("gk");
    let vals_a: Vec<u64> = (0..2000).map(|i| i * 7 % 1000).collect();
    let vals_b: Vec<u64> = (0..2000).map(|i| i * 13 % 1000).collect();
    let a = GkSummary::exact(&vals_a);
    let b2 = GkSummary::exact(&vals_b);
    g.bench_function("combine_2k", |b| {
        b.iter(|| black_box(&a).combine(black_box(&b2)))
    });
    g.bench_function("reduce_2k", |b| {
        b.iter(|| {
            let mut s = a.clone();
            s.reduce(black_box(50));
            s
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fm,
    bench_kmv,
    bench_minhash,
    bench_freq_summary,
    bench_multipath_fuse,
    bench_gk
);
criterion_main!(benches);
