//! Benchmarks for the execution engine itself: the compile-then-execute
//! split (plan reuse vs per-epoch rebuild) and the parallel trial
//! executor (an 8-trial sweep, sequential vs fanned across cores).
//!
//! On a multi-core runner the `trials8/pool` case should beat
//! `trials8/sequential` by roughly the core count (≥2× on 4 cores); on a
//! single core the two are within noise, because the pool degenerates to
//! the identical sequential loop. `epoch/plan_reuse` vs
//! `epoch/rebuild_per_epoch` isolates what the cached [`EpochPlan`]
//! saves: the per-epoch height/subtree/level recomputation and the inbox
//! arena growth.
//!
//! [`EpochPlan`]: tributary_delta::runner::EpochPlan

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, FixedReadings, TrialPool};
use tributary_delta::session::{Scheme, Session};

const TRIALS: u64 = 8;
const EPOCHS: u64 = 12;

fn sweep_with(pool: &TrialPool, net: &td_netsim::network::Network, values: &[u64]) -> f64 {
    let batch = Driver::run_trials(pool, 42, TRIALS, |_t, rng| {
        let session = Session::with_paper_defaults(Scheme::Td, net, rng);
        let mut driver = Driver::new(session, 2);
        let run = driver.run_scalar(
            &td_aggregates::sum::Sum::default(),
            &FixedReadings(values.to_vec()),
            &Global::new(0.2),
            EPOCHS,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            rng,
        );
        (
            run.estimates.iter().sum::<f64>(),
            driver.into_session().stats().clone(),
        )
    });
    batch.outputs.iter().sum()
}

fn bench_trial_pool(c: &mut Criterion) {
    let net = Synthetic::small(200).build(9);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 50).collect();
    let sequential = TrialPool::with_threads(1);
    let pool = TrialPool::new();
    let mut g = c.benchmark_group("trials8");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| sweep_with(black_box(&sequential), &net, &values))
    });
    g.bench_function("pool", |b| {
        b.iter(|| sweep_with(black_box(&pool), &net, &values))
    });
    g.finish();
}

fn bench_plan_reuse(c: &mut Criterion) {
    let net = Synthetic::paper().build(11);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 80).collect();
    let model = Global::new(0.1);
    let mut g = c.benchmark_group("epoch");
    g.sample_size(10);
    // Both cases run lossy TD epochs through a long-lived warm session —
    // the steady state the plan cache targets; the only difference is
    // whether the compiled plan survives between epochs. Sessions
    // persist across iterations so construction cost stays out of the
    // timing.
    for (name, rebuild) in [("plan_reuse", false), ("rebuild_per_epoch", true)] {
        let mut rng = rng_from_seed(12);
        let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
        let mut epoch = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                if rebuild {
                    session.clear_cached_plan();
                }
                let proto = tributary_delta::protocol::ScalarProtocol::new(
                    td_aggregates::sum::Sum::default(),
                    &values,
                );
                let out = session.run_epoch(&proto, &model, epoch, &mut rng).output;
                epoch += 1;
                black_box(out)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trial_pool, bench_plan_reuse);
criterion_main!(benches);
