//! Criterion benchmarks for the simulator substrate: topology
//! construction and full aggregation epochs at the paper's 600-node
//! scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use td_netsim::loss::Global;
use td_netsim::rng::rng_from_seed;
use td_netsim::stats::CommStats;
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::rings::Rings;
use td_topology::tree::{build_tag_tree, ParentSelection};
use td_workloads::synthetic::Synthetic;
use tributary_delta::protocol::ScalarProtocol;
use tributary_delta::runner::{run_td_epoch, RunnerConfig};
use tributary_delta::session::{Scheme, Session};

fn bench_topology(c: &mut Criterion) {
    let net = Synthetic::paper().build(1);
    let mut g = c.benchmark_group("topology_600");
    g.sample_size(20);
    g.bench_function("rings", |b| b.iter(|| Rings::build(black_box(&net))));
    g.bench_function("tag_tree", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(2);
            build_tag_tree(
                black_box(&net),
                ParentSelection::Random,
                None,
                false,
                &mut rng,
            )
        })
    });
    g.bench_function("bushy_tree", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(3);
            let rings = Rings::build(&net);
            build_bushy_tree(black_box(&net), &rings, BushyOptions::default(), &mut rng)
        })
    });
    g.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let net = Synthetic::paper().build(4);
    let rings = Rings::build(&net);
    let mut rng = rng_from_seed(5);
    let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    let topo = td_topology::td::TdTopology::new(rings, tree, 2);
    let values = Synthetic::sum_readings(&net, 6, 0);
    let model = Global::new(0.1);
    let mut g = c.benchmark_group("epoch_600");
    g.sample_size(20);
    g.bench_function("td_sum_epoch", |b| {
        b.iter(|| {
            let proto = ScalarProtocol::new(td_aggregates::sum::Sum::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(7);
            run_td_epoch(
                &proto,
                black_box(&topo),
                &net,
                &model,
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            )
        })
    });
    g.bench_function("session_count_10_epochs", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(8);
            let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
            let counts = Synthetic::count_readings(&net);
            for epoch in 0..10 {
                let proto = ScalarProtocol::new(td_aggregates::count::Count::default(), &counts);
                session.run_epoch(&proto, &model, epoch, &mut rng);
            }
            session
        })
    });
    g.finish();
}

criterion_group!(benches, bench_topology, bench_epoch);
criterion_main!(benches);
