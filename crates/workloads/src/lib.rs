//! # td-workloads — the paper's evaluation scenarios (§7.1)
//!
//! Two deployments drive every experiment:
//!
//! * [`labdata`] — a reconstruction of the Intel Research Berkeley lab
//!   deployment: 54 motes in a ~40 m × 30 m lab, light readings, and
//!   distance-dependent link loss. The real dataset \[9\] is not available
//!   offline, so this module synthesizes a deployment with the same
//!   *statistics the paper relies on*: an irregular, bushy topology whose
//!   TAG tree has a domination factor near the paper's measured 2.25,
//!   several hops of network depth, realistic loss, and strongly skewed
//!   diurnal light traces (see DESIGN.md's substitution table).
//! * [`synthetic`] — the Synthetic scenario: 600 sensors placed uniformly
//!   at random in a 20 ft × 20 ft area with the base station at (10, 10),
//!   plus the density/width sweeps of Figure 7.
//!
//! [`items`] generates the item streams for the frequent-items
//! experiments (Zipf-skewed readings and §7.4.2's disjoint-uniform
//! streams), and [`scenario`] packages the failure models, including the
//! dynamic timeline of Figure 6. [`workload`] plugs both deployments
//! into the session driver's [`tributary_delta::Workload`] interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod items;
pub mod labdata;
pub mod scenario;
pub mod synthetic;
pub mod workload;

pub use labdata::LabData;
pub use synthetic::Synthetic;
pub use workload::SyntheticSum;
