//! Reconstruction of the Intel Research Berkeley lab deployment \[9\].
//!
//! The real LabData scenario simulated 54 motes "using actual sensor
//! locations and knowledge of communication loss rates among sensors",
//! with ~2.3 M light readings. The dataset is not available offline, so
//! this module builds a synthetic stand-in preserving the statistics the
//! paper's experiments rely on (documented in DESIGN.md):
//!
//! * 54 motes on a 40 m × 30 m lab-like floorplan — motes along the
//!   perimeter offices and two interior corridor rows, the gateway near
//!   the lab's center-west (as in the published layout);
//! * multi-hop depth (~4 hops) and a **bushy TAG tree** — the paper
//!   measures a domination factor of 2.25 on this deployment (§7.4.1);
//! * distance-dependent per-link loss, lossy enough that pure trees lose
//!   roughly half the readings (§7.3 reports TAG RMS ≈ 0.5 vs SD ≈ 0.12);
//! * skewed diurnal light traces: bright window offices, dim interior,
//!   day/night modulation plus sensor noise — discretized readings give
//!   the frequent-items streams their realistic skew.

use td_netsim::loss::DistanceLoss;
use td_netsim::network::Network;
use td_netsim::node::Position;
use td_netsim::rng::derive_seed;

/// Number of sensor motes in the deployment.
pub const MOTES: usize = 54;

/// Radio range (meters) used for connectivity. Calibrated jointly with
/// the loss model (see the calibration probe in td-bench): large enough
/// that rings have the path redundancy that keeps synopsis diffusion far
/// below tree error, while the TAG tree's domination factor stays in the
/// band around the paper's measured 2.25.
pub const RANGE_M: f64 = 13.0;

/// The LabData scenario.
#[derive(Clone, Debug)]
pub struct LabData {
    net: Network,
    seed: u64,
}

/// Mote coordinates (meters) on the 40 m × 30 m floorplan: perimeter
/// offices plus two interior rows, mirroring the published lab layout's
/// structure (clusters of 2–3 motes per bay). Exposed for visualization
/// and for experiments that need the raw geometry.
pub fn mote_positions() -> Vec<Position> {
    let mut p = Vec::with_capacity(MOTES + 1);
    // Base station / gateway at the lab center, amid the corridor motes
    // (the real gateway sat centrally; a central gateway also gives the
    // first ring short, reliable last-hop links, which is what lets
    // synopsis diffusion approach its approximation-error floor).
    p.push(Position::new(20.0, 15.0));
    // South wall offices (y ≈ 2), 12 motes.
    for i in 0..12 {
        p.push(Position::new(2.5 + i as f64 * 3.2, 2.0 + (i % 2) as f64));
    }
    // North wall offices (y ≈ 28), 12 motes.
    for i in 0..12 {
        p.push(Position::new(2.5 + i as f64 * 3.2, 28.0 - (i % 2) as f64));
    }
    // East wall (x ≈ 38), 6 motes.
    for i in 0..6 {
        p.push(Position::new(38.0 - (i % 2) as f64, 4.5 + i as f64 * 4.2));
    }
    // West wall (x ≈ 2), 6 motes.
    for i in 0..6 {
        p.push(Position::new(2.0 + (i % 2) as f64, 4.5 + i as f64 * 4.2));
    }
    // Interior corridor row (y ≈ 12), 9 motes.
    for i in 0..9 {
        p.push(Position::new(5.0 + i as f64 * 3.8, 12.0));
    }
    // Interior corridor row (y ≈ 19), 9 motes.
    for i in 0..9 {
        p.push(Position::new(6.5 + i as f64 * 3.8, 19.0));
    }
    debug_assert_eq!(p.len(), MOTES + 1);
    p
}

impl LabData {
    /// Build the scenario. `seed` controls only the reading traces; the
    /// floorplan is fixed.
    pub fn new(seed: u64) -> Self {
        let net = Network::new(mote_positions(), RANGE_M);
        debug_assert!(net.is_connected());
        LabData { net, seed }
    }

    /// The deployment network (node 0 is the gateway).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The measured-loss stand-in: link loss rising with distance. The
    /// parameters are calibrated (see EXPERIMENTS.md) so that pure tree
    /// aggregation loses roughly half the readings over the ~4-hop
    /// network while rings stay near-complete — the paper's
    /// TAG ≈ 0.5 / SD ≈ 0.12 RMS split.
    pub fn loss_model(&self) -> DistanceLoss {
        DistanceLoss::new(0.05, 0.6, 3.0)
    }

    /// Light reading (lux-like integer) of `node` at `epoch`.
    ///
    /// Bright window offices (perimeter) sit near 450 lux, interior motes
    /// near 150; a diurnal factor sweeps 15%–100% over a 480-epoch "day",
    /// with per-reading noise. Deterministic in `(seed, node, epoch)`.
    pub fn light_reading(&self, node: u32, epoch: u64) -> u64 {
        let pos = self.net.position(td_netsim::node::NodeId(node));
        let perimeter = pos.x < 4.0 || pos.x > 36.0 || pos.y < 4.0 || pos.y > 26.0;
        let base = if perimeter { 450.0 } else { 150.0 };
        let day_phase = (epoch % 480) as f64 / 480.0 * std::f64::consts::TAU;
        let diurnal = 0.575 + 0.425 * day_phase.sin();
        let noise = (derive_seed(self.seed, node as u64 * 1_000_003 + epoch) % 41) as f64 - 20.0;
        ((base * diurnal + noise).max(1.0)) as u64
    }

    /// All readings for an epoch (`values[0]`, the gateway, reads 0).
    pub fn readings(&self, epoch: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.net.len()];
        for id in 1..self.net.len() as u32 {
            out[id as usize] = self.light_reading(id, epoch);
        }
        out
    }

    /// Discretize a light value into an item id (10-lux buckets), the
    /// item universe of the frequent-items experiments. The bucket width
    /// is chosen so the universe holds both clearly-frequent items and a
    /// band of items just above the 1% support threshold — the marginal
    /// items whose loss-induced undercounting produces Figure 9's
    /// false-negative gradient.
    pub fn discretize(value: u64) -> u64 {
        value / 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_netsim::node::NodeId;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::domination::domination_factor;
    use td_topology::rings::Rings;
    use td_topology::tree::{build_tag_tree, ParentSelection};

    #[test]
    fn deployment_shape() {
        let lab = LabData::new(1);
        let net = lab.network();
        assert_eq!(net.num_sensors(), MOTES);
        assert!(net.is_connected());
        let max_hop = net.hop_counts().into_iter().max().unwrap();
        assert!((2..=6).contains(&max_hop), "depth {max_hop}");
    }

    #[test]
    fn domination_factor_near_paper_value() {
        // §7.4.1: "we find the LabData dataset to have a domination
        // factor of 2.25". Accept a band around it for the TAG tree.
        let lab = LabData::new(2);
        let mut rng = rng_from_seed(3);
        let tree = build_tag_tree(
            lab.network(),
            ParentSelection::Random,
            None,
            false,
            &mut rng,
        );
        let d = domination_factor(&tree, 0.05);
        // The reconstruction is shallower than the real lab (range is
        // calibrated for ring redundancy), which pushes the factor above
        // the paper's 2.25; the band accepts the calibrated geometry.
        assert!(
            (1.8..=4.5).contains(&d),
            "TAG tree domination factor {d} far from the paper's 2.25"
        );
    }

    #[test]
    fn bushy_tree_improves_or_matches() {
        let lab = LabData::new(4);
        let mut rng = rng_from_seed(5);
        let rings = Rings::build(lab.network());
        let tag = build_tag_tree(lab.network(), ParentSelection::Random, None, true, &mut rng);
        let bushy = build_bushy_tree(lab.network(), &rings, BushyOptions::default(), &mut rng);
        assert!(
            domination_factor(&bushy, 0.05) >= domination_factor(&tag, 0.05) - 0.25,
            "bushy {} much worse than tag {}",
            domination_factor(&bushy, 0.05),
            domination_factor(&tag, 0.05)
        );
    }

    #[test]
    fn readings_deterministic_and_diurnal() {
        let lab = LabData::new(6);
        assert_eq!(lab.light_reading(5, 100), lab.light_reading(5, 100));
        // Epoch 120 is solar noon (sin peak); epoch 360 is night.
        let noon: u64 = (1..=MOTES as u32).map(|n| lab.light_reading(n, 120)).sum();
        let night: u64 = (1..=MOTES as u32).map(|n| lab.light_reading(n, 360)).sum();
        assert!(
            noon > 2 * night,
            "diurnal cycle missing: noon {noon} night {night}"
        );
    }

    #[test]
    fn perimeter_brighter_than_interior() {
        let lab = LabData::new(7);
        let net = lab.network();
        let (mut per, mut interior, mut np, mut ni) = (0u64, 0u64, 0, 0);
        for n in 1..=MOTES as u32 {
            let pos = net.position(NodeId(n));
            let v = lab.light_reading(n, 120);
            if pos.x < 4.0 || pos.x > 36.0 || pos.y < 4.0 || pos.y > 26.0 {
                per += v;
                np += 1;
            } else {
                interior += v;
                ni += 1;
            }
        }
        assert!(per / np.max(1) > interior / ni.max(1));
    }

    #[test]
    fn loss_model_moderate_per_hop() {
        let lab = LabData::new(8);
        let net = lab.network();
        let model = lab.loss_model();
        use td_netsim::loss::LossModel;
        // Average loss over actual radio links should land in the lossy-
        // but-usable band the paper describes (up to ~30% is common).
        let mut total = 0.0;
        let mut links = 0;
        for u in net.node_ids() {
            for &v in net.neighbors(u) {
                total += model.loss_rate(u, v, net, 0);
                links += 1;
            }
        }
        let avg = total / links as f64;
        assert!((0.1..=0.45).contains(&avg), "average link loss {avg}");
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use td_netsim::rng::rng_from_seed;
    use td_topology::domination::domination_factor;
    use td_topology::tree::{build_tag_tree, ParentSelection};

    /// Calibration probe (run with --ignored --nocapture): prints the
    /// domination factor of TAG trees over the floorplan for a range of
    /// radio ranges.
    #[test]
    #[ignore]
    fn print_domination_by_range() {
        for range in [7.0f64, 8.0, 9.0, 10.0, 11.0, 12.0, 14.0] {
            let net = Network::new(mote_positions(), range);
            if !net.is_connected() {
                println!("range {range}: disconnected");
                continue;
            }
            let mut sum = 0.0;
            let trials = 20;
            for seed in 0..trials {
                let mut rng = rng_from_seed(seed);
                let tree = build_tag_tree(&net, ParentSelection::Random, None, false, &mut rng);
                sum += domination_factor(&tree, 0.05);
            }
            let depth = net.hop_counts().into_iter().max().unwrap();
            println!(
                "range {range}: avg TAG domination {:.2}, depth {depth}, avg degree {:.1}",
                sum / trials as f64,
                net.average_degree()
            );
        }
    }
}
