//! [`Workload`] adapters: the paper's scenarios plugged into the
//! session driver.
//!
//! `tributary-delta`'s [`Driver`](tributary_delta::Driver) consumes any
//! [`Workload`] — a source of per-epoch, per-node readings. This module
//! adapts both evaluation scenarios to it:
//!
//! * [`LabData`] implements `Workload` directly (its diurnal light
//!   traces are already per-epoch);
//! * [`SyntheticSum`] wraps [`Synthetic::sum_readings`]'s seeded
//!   per-epoch readings;
//! * [`Synthetic::count_workload`] yields the constant all-ones readings
//!   Count queries use (a [`FixedReadings`]);
//! * [`DriftingStream`] replays any workload as a non-stationary
//!   stream (seasonal swing + regime shifts) — the shape windowed
//!   stream queries exist for.

use crate::labdata::LabData;
use crate::synthetic::Synthetic;
use rand::Rng;
use td_netsim::network::Network;
use td_netsim::rng::substream;
use tributary_delta::driver::{FixedReadings, Workload};

impl Workload for LabData {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        LabData::readings(self, epoch)
    }
}

/// The Synthetic scenario's per-epoch Sum readings as a [`Workload`]:
/// stable per-node baselines with a small epoch-varying component,
/// deterministic in `(seed, epoch)`.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSum {
    len: usize,
    seed: u64,
}

impl SyntheticSum {
    /// Sum readings for `net`, seeded with `seed`.
    pub fn new(net: &Network, seed: u64) -> Self {
        SyntheticSum {
            len: net.len(),
            seed,
        }
    }
}

impl Workload for SyntheticSum {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        Synthetic::sum_readings_for_len(self.len, self.seed, epoch)
    }
}

/// Replays any [`Workload`] as a *drifting* stream: per-epoch readings
/// are scaled by a deterministic drift factor combining a slow seasonal
/// swing (a triangle wave of the configured period and amplitude) with
/// occasional regime shifts (a step change to a new level every
/// `shift_every` epochs). Windowed queries over a stationary workload
/// are trivially right; this is the non-stationary shape — diurnal
/// load, deployment-wide mode changes — that cross-epoch windows exist
/// to track.
///
/// ## Regime-shift seeding
///
/// Regime levels are **not** drawn from a shared, advancing RNG: epoch
/// `e` belongs to regime index `e / shift_every`, and that index's
/// level is drawn from its own named substream of the workload's seed
/// ([`substream`]`(seed, 0xD21F7 ^ regime_index)`, uniform in
/// `0.6..1.4`). Consequences worth relying on:
///
/// * the whole trajectory is a pure function of `(seed, epoch)` —
///   random access at any epoch, no replay, no hidden state;
/// * the level is constant within a regime and changes (almost surely)
///   at each boundary, whatever order epochs are queried in;
/// * two `DriftingStream`s over different inner workloads but the same
///   `seed` see the *same* drift trajectory — schemes and experiments
///   compare on identical non-stationarity;
/// * changing `shift_every` re-indexes the regimes (it does not merely
///   stretch them), so treat `(seed, shift_every)` as the trajectory's
///   identity.
///
/// [`factor`](Self::factor) exposes the multiplier so experiments can
/// compute exact windowed ground truth without re-deriving readings.
#[derive(Clone, Copy, Debug)]
pub struct DriftingStream<W> {
    inner: W,
    seed: u64,
    /// Epochs per seasonal cycle.
    pub period: u64,
    /// Peak fractional swing of the seasonal component (0.4 = ±40%).
    pub amplitude: f64,
    /// Epochs between regime shifts (0 disables them).
    pub shift_every: u64,
}

impl<W: Workload> DriftingStream<W> {
    /// Wrap a workload with the default drift: a 40-epoch season of
    /// ±40% plus a regime shift every 25 epochs.
    pub fn new(inner: W, seed: u64) -> Self {
        DriftingStream {
            inner,
            seed,
            period: 40,
            amplitude: 0.4,
            shift_every: 25,
        }
    }

    /// Override the seasonal cycle length (builder-style).
    pub fn period(mut self, epochs: u64) -> Self {
        assert!(epochs >= 1, "a season spans at least one epoch");
        self.period = epochs;
        self
    }

    /// Override the seasonal swing (builder-style).
    pub fn amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Override the regime-shift cadence (builder-style; 0 disables).
    pub fn shift_every(mut self, epochs: u64) -> Self {
        self.shift_every = epochs;
        self
    }

    /// The drift multiplier applied at `epoch` (exposed so experiments
    /// can compute ground truth without replaying readings).
    pub fn factor(&self, epoch: u64) -> f64 {
        // Triangle wave through [1 − a, 1 + a] over `period` epochs.
        let phase = (epoch % self.period) as f64 / self.period as f64;
        let tri = 1.0 - (2.0 * phase - 1.0).abs(); // 0 → 1 → 0
        let season = 1.0 - self.amplitude + 2.0 * self.amplitude * tri;
        // One level per regime index, stable within the regime
        // (`checked_div` also covers the shift-free configuration).
        let regime = match epoch.checked_div(self.shift_every) {
            None => 1.0,
            Some(regime_index) => {
                let mut rng = substream(self.seed, 0xD21F7 ^ regime_index);
                rng.gen_range(0.6..1.4)
            }
        };
        season * regime
    }
}

impl<W: Workload> Workload for DriftingStream<W> {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        let factor = self.factor(epoch);
        let mut readings = self.inner.readings(epoch);
        // The base station's slot is scaled too: aggregates ignore it.
        for v in &mut readings {
            *v = (*v as f64 * factor).round() as u64;
        }
        readings
    }
}

impl Synthetic {
    /// The constant Count workload (reading 1 per node) for `net`.
    pub fn count_workload(net: &Network) -> FixedReadings {
        FixedReadings(Synthetic::count_readings(net))
    }

    /// The seeded Sum workload for `net`.
    pub fn sum_workload(net: &Network, seed: u64) -> SyntheticSum {
        SyntheticSum::new(net, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sum_workload_matches_direct_readings() {
        let net = Synthetic::small(80).build(3);
        let w = Synthetic::sum_workload(&net, 7);
        assert_eq!(w.readings(5), Synthetic::sum_readings(&net, 7, 5));
        assert_ne!(w.readings(5), w.readings(6));
    }

    #[test]
    fn labdata_workload_is_its_readings() {
        let lab = LabData::new(9);
        assert_eq!(Workload::readings(&lab, 42), lab.readings(42));
    }

    #[test]
    fn drifting_stream_is_deterministic_and_actually_drifts() {
        let net = Synthetic::small(70).build(9);
        let w = DriftingStream::new(Synthetic::sum_workload(&net, 5), 77);
        assert_eq!(w.readings(12), w.readings(12), "deterministic per epoch");
        // Readings are the inner readings scaled by the advertised factor.
        let inner = Synthetic::sum_workload(&net, 5).readings(12);
        let f = w.factor(12);
        for (d, i) in w.readings(12).iter().zip(&inner) {
            assert_eq!(*d, (*i as f64 * f).round() as u64);
        }
        // The factor moves over a season and across regimes.
        let factors: Vec<f64> = (0..120).map(|e| w.factor(e)).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.3, "drift too flat: {min}..{max}");
        // Regimes are stable within a shift interval's season-detrended
        // level: same phase, different regime index ⇒ different factor.
        let same_phase = (w.factor(0), w.factor(w.period * 5));
        assert_ne!(same_phase.0, same_phase.1, "regime shifts missing");
    }

    #[test]
    fn drifting_stream_builder_overrides() {
        let w = DriftingStream::new(FixedReadings(vec![0, 100]), 1)
            .period(10)
            .amplitude(0.0)
            .shift_every(0);
        // No seasonal swing, no regimes: the stream is the inner workload.
        for epoch in 0..20 {
            assert_eq!(w.factor(epoch), 1.0);
            assert_eq!(w.readings(epoch), vec![0, 100]);
        }
    }

    #[test]
    fn count_workload_is_all_ones() {
        let net = Synthetic::small(60).build(1);
        let w = Synthetic::count_workload(&net);
        let r = w.readings(0);
        assert_eq!(r.len(), net.len());
        assert!(r.iter().all(|&v| v == 1));
    }
}
