//! [`Workload`] adapters: the paper's scenarios plugged into the
//! session driver.
//!
//! `tributary-delta`'s [`Driver`](tributary_delta::Driver) consumes any
//! [`Workload`] — a source of per-epoch, per-node readings. This module
//! adapts both evaluation scenarios to it:
//!
//! * [`LabData`] implements `Workload` directly (its diurnal light
//!   traces are already per-epoch);
//! * [`SyntheticSum`] wraps [`Synthetic::sum_readings`]'s seeded
//!   per-epoch readings;
//! * [`Synthetic::count_workload`] yields the constant all-ones readings
//!   Count queries use (a [`FixedReadings`]).

use crate::labdata::LabData;
use crate::synthetic::Synthetic;
use td_netsim::network::Network;
use tributary_delta::driver::{FixedReadings, Workload};

impl Workload for LabData {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        LabData::readings(self, epoch)
    }
}

/// The Synthetic scenario's per-epoch Sum readings as a [`Workload`]:
/// stable per-node baselines with a small epoch-varying component,
/// deterministic in `(seed, epoch)`.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSum {
    len: usize,
    seed: u64,
}

impl SyntheticSum {
    /// Sum readings for `net`, seeded with `seed`.
    pub fn new(net: &Network, seed: u64) -> Self {
        SyntheticSum {
            len: net.len(),
            seed,
        }
    }
}

impl Workload for SyntheticSum {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        Synthetic::sum_readings_for_len(self.len, self.seed, epoch)
    }
}

impl Synthetic {
    /// The constant Count workload (reading 1 per node) for `net`.
    pub fn count_workload(net: &Network) -> FixedReadings {
        FixedReadings(Synthetic::count_readings(net))
    }

    /// The seeded Sum workload for `net`.
    pub fn sum_workload(net: &Network, seed: u64) -> SyntheticSum {
        SyntheticSum::new(net, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sum_workload_matches_direct_readings() {
        let net = Synthetic::small(80).build(3);
        let w = Synthetic::sum_workload(&net, 7);
        assert_eq!(w.readings(5), Synthetic::sum_readings(&net, 7, 5));
        assert_ne!(w.readings(5), w.readings(6));
    }

    #[test]
    fn labdata_workload_is_its_readings() {
        let lab = LabData::new(9);
        assert_eq!(Workload::readings(&lab, 42), lab.readings(42));
    }

    #[test]
    fn count_workload_is_all_ones() {
        let net = Synthetic::small(60).build(1);
        let w = Synthetic::count_workload(&net);
        let r = w.readings(0);
        assert_eq!(r.len(), net.len());
        assert!(r.iter().all(|&v| v == 1));
    }
}
