//! Failure scenarios (§7.1–§7.3).

use td_netsim::loss::{Global, LossModel, NoLoss, Regional, Timeline};
use td_netsim::node::Rect;

/// The Regional failure rectangle of §7.1: `{(0,0),(10,10)}` of the 20×20
/// deployment area.
pub fn paper_failure_region() -> Rect {
    Rect::from_coords(0.0, 0.0, 10.0, 10.0)
}

/// `Global(p)` (§7.1).
pub fn global(p: f64) -> Global {
    Global::new(p)
}

/// `Regional(p1, p2)` over the paper's quadrant (§7.1).
pub fn regional(p1: f64, p2: f64) -> Regional {
    Regional::new(paper_failure_region(), p1, p2)
}

/// The failure quadrant scaled to a `width × height` deployment — used so
/// smoke-scale (smaller-area) runs keep the paper's one-quadrant geometry.
pub fn failure_region_for(width: f64, height: f64) -> Rect {
    Rect::from_coords(0.0, 0.0, width / 2.0, height / 2.0)
}

/// `Regional(p1, p2)` over the scaled quadrant.
pub fn regional_for(width: f64, height: f64, p1: f64, p2: f64) -> Regional {
    Regional::new(failure_region_for(width, height), p1, p2)
}

/// The dynamic scenario of Figure 6: `Global(0)` → `Regional(0.3, 0)` at
/// t = 100 → `Global(0.3)` at t = 200 → `Global(0)` at t = 300.
pub fn figure6_timeline() -> Timeline {
    Timeline::new(vec![
        (0, Box::new(NoLoss) as Box<dyn LossModel>),
        (100, Box::new(regional(0.3, 0.0))),
        (200, Box::new(global(0.3))),
        (300, Box::new(NoLoss)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_netsim::network::Network;
    use td_netsim::node::{NodeId, Position};

    fn probe_net() -> Network {
        Network::new(
            vec![
                Position::new(10.0, 10.0), // base
                Position::new(5.0, 5.0),   // inside failure region
                Position::new(15.0, 15.0), // outside
            ],
            20.0,
        )
    }

    #[test]
    fn regional_uses_paper_quadrant() {
        let net = probe_net();
        let m = regional(0.8, 0.05);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, 0), 0.8);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(0), &net, 0), 0.05);
    }

    #[test]
    fn figure6_phases() {
        let net = probe_net();
        let t = figure6_timeline();
        // t in [0,100): lossless everywhere.
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 50), 0.0);
        // t in [100,200): regional 0.3 inside, 0 outside.
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 150), 0.3);
        assert_eq!(t.loss_rate(NodeId(2), NodeId(0), &net, 150), 0.0);
        // t in [200,300): global 0.3.
        assert_eq!(t.loss_rate(NodeId(2), NodeId(0), &net, 250), 0.3);
        // t >= 300: restored.
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 350), 0.0);
    }
}
