//! The Synthetic scenario (§7.1): 600 sensors, 20 ft × 20 ft, base
//! station at (10, 10), plus the deployment sweeps of Figure 7.

use td_netsim::network::Network;
use td_netsim::node::Position;
use td_netsim::rng::substream;

/// Builder for synthetic deployments.
#[derive(Clone, Copy, Debug)]
pub struct Synthetic {
    /// Number of sensor motes.
    pub sensors: usize,
    /// Deployment width.
    pub width: f64,
    /// Deployment height.
    pub height: f64,
    /// Radio range.
    pub range: f64,
}

impl Default for Synthetic {
    fn default() -> Self {
        Synthetic::paper()
    }
}

impl Synthetic {
    /// The paper's configuration: 600 sensors in 20×20, base at the
    /// center. The paper does not state the radio range; 2.5 ft gives
    /// each node ~7 same-direction ring receivers — the redundancy level
    /// at which synopsis diffusion stays near its approximation-error
    /// floor through the realistic loss band (the paper's Figure 5(a)
    /// shape) — at a multi-hop depth of ~5 ring levels.
    pub fn paper() -> Self {
        Synthetic {
            sensors: 600,
            width: 20.0,
            height: 20.0,
            range: 2.5,
        }
    }

    /// A smaller instance for fast tests/benches (keeps density and
    /// geometry, scales the population).
    pub fn small(sensors: usize) -> Self {
        let scale = (sensors as f64 / 600.0).sqrt();
        Synthetic {
            sensors,
            width: 20.0 * scale,
            height: 20.0 * scale,
            range: 2.5,
        }
    }

    /// The paper configuration when `sensors` matches it, otherwise a
    /// density-preserving scaled instance — what experiments use so a
    /// smoke-scale population still forms a connected multi-hop network.
    pub fn sized(sensors: usize) -> Self {
        if sensors >= 600 {
            Synthetic {
                sensors,
                ..Synthetic::paper()
            }
        } else {
            Synthetic::small(sensors)
        }
    }

    /// Build without requiring connectivity (sparse deployments for the
    /// Figure 7 sweeps; aggregation simply excludes unreachable nodes).
    pub fn build_unchecked(&self, seed: u64) -> Network {
        let mut rng = substream(seed, 0x05E7);
        Network::random_in_rect(
            self.sensors,
            self.width,
            self.height,
            self.base(),
            self.range,
            &mut rng,
        )
    }

    /// Figure 7(a): fixed 20×20 area, density `d` sensors per unit area.
    pub fn with_density(density: f64) -> Self {
        let sensors = (density * 400.0).round() as usize;
        Synthetic {
            sensors,
            width: 20.0,
            height: 20.0,
            // Figure 7 needs comparable radio reach across densities; the
            // paper holds the radio fixed while varying density.
            range: 2.5,
        }
    }

    /// Figure 7(b): density 1 sensor per square unit, height 20, width
    /// `w`.
    pub fn with_width(width: f64) -> Self {
        Synthetic {
            sensors: (width * 20.0).round() as usize,
            width,
            height: 20.0,
            range: 2.5,
        }
    }

    /// The base station position (the deployment center).
    pub fn base(&self) -> Position {
        Position::new(self.width / 2.0, self.height / 2.0)
    }

    /// Build the (connected) network for a seed.
    pub fn build(&self, seed: u64) -> Network {
        let mut rng = substream(seed, 0x05E7);
        Network::random_connected(
            self.sensors,
            self.width,
            self.height,
            self.base(),
            self.range,
            &mut rng,
        )
    }

    /// Constant readings (value 1 per node) for Count experiments.
    pub fn count_readings(net: &Network) -> Vec<u64> {
        vec![1; net.len()]
    }

    /// Per-epoch Sum readings: stable per-node baselines (20–120) with a
    /// small epoch-varying component, deterministic in `(seed, epoch)`.
    pub fn sum_readings(net: &Network, seed: u64, epoch: u64) -> Vec<u64> {
        Synthetic::sum_readings_for_len(net.len(), seed, epoch)
    }

    /// [`Synthetic::sum_readings`] by node count (what the
    /// [`Workload`](tributary_delta::Workload) adapter stores).
    pub fn sum_readings_for_len(len: usize, seed: u64, epoch: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(len);
        for id in 0..len as u64 {
            let base = 20 + td_netsim::rng::derive_seed(seed, id) % 100;
            let jitter = td_netsim::rng::derive_seed(seed ^ 0xEE, id * 1_000_003 + epoch) % 11;
            out.push(base + jitter);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_builds_connected() {
        let net = Synthetic::paper().build(1);
        assert_eq!(net.num_sensors(), 600);
        assert!(net.is_connected());
        let hops = net.hop_counts();
        let max_hop = hops.iter().max().copied().unwrap();
        assert!((5..=12).contains(&max_hop), "network depth {max_hop}");
    }

    #[test]
    fn density_sweep_counts() {
        assert_eq!(Synthetic::with_density(0.2).sensors, 80);
        assert_eq!(Synthetic::with_density(1.5).sensors, 600);
    }

    #[test]
    fn width_sweep_counts() {
        let s = Synthetic::with_width(50.0);
        assert_eq!(s.sensors, 1000);
        assert_eq!(s.height, 20.0);
    }

    #[test]
    fn sum_readings_deterministic_and_bounded() {
        let net = Synthetic::small(100).build(2);
        let a = Synthetic::sum_readings(&net, 7, 3);
        let b = Synthetic::sum_readings(&net, 7, 3);
        assert_eq!(a, b);
        let c = Synthetic::sum_readings(&net, 7, 4);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (20..=130).contains(&v)));
    }

    #[test]
    fn small_instance_keeps_density() {
        let s = Synthetic::small(150);
        let density = s.sensors as f64 / (s.width * s.height);
        assert!((density - 1.5).abs() < 0.1, "density {density}");
    }
}
