//! Item streams for the frequent-items experiments (§7.4).

use crate::labdata::LabData;
use rand::distributions::Distribution;
use rand::Rng;
use td_frequent::items::ItemBag;
use td_netsim::network::Network;
use td_netsim::rng::substream;

/// A Zipf sampler over items `0..universe` with exponent `alpha`
/// (inverse-CDF over precomputed cumulative weights).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler.
    ///
    /// # Panics
    /// Panics if `universe == 0` or `alpha < 0`.
    pub fn new(universe: usize, alpha: f64) -> Self {
        assert!(universe > 0);
        assert!(alpha >= 0.0);
        let mut cumulative = Vec::with_capacity(universe);
        let mut acc = 0.0;
        for rank in 1..=universe {
            acc += 1.0 / (rank as f64).powf(alpha);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }
}

impl Distribution<u64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1) as u64,
        }
    }
}

/// Zipf-skewed per-node bags: every node draws `per_node` items from the
/// same global Zipf(`alpha`) distribution over `universe` items — the
/// "consensus reading" workload motivating frequent items (§5).
pub fn zipf_bags(
    net: &Network,
    per_node: usize,
    universe: usize,
    alpha: f64,
    seed: u64,
) -> Vec<ItemBag> {
    let zipf = Zipf::new(universe, alpha);
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        let mut rng = substream(seed, 0x21F0 + u.0 as u64);
        for _ in 0..per_node {
            bags[u.index()].add(zipf.sample(&mut rng), 1);
        }
    }
    bags
}

/// §7.4.2's synthetic stress: "the same item never occurs in multiple
/// streams and within a stream the items are uniformly distributed".
/// Node `i` draws uniformly from its private range of `values_per_node`
/// item ids.
pub fn disjoint_uniform_bags(
    net: &Network,
    per_node: usize,
    values_per_node: u64,
    seed: u64,
) -> Vec<ItemBag> {
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        let base = u.0 as u64 * values_per_node;
        let mut rng = substream(seed, 0xD150 + u.0 as u64);
        for _ in 0..per_node {
            bags[u.index()].add(base + rng.gen_range(0..values_per_node), 1);
        }
    }
    bags
}

/// LabData item streams: each mote's discretized light readings over a
/// window of epochs (the realistic skew used in Figures 8 and 9).
pub fn labdata_bags(lab: &LabData, window_epochs: u64) -> Vec<ItemBag> {
    let net = lab.network();
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        for epoch in 0..window_epochs {
            bags[u.index()].add(LabData::discretize(lab.light_reading(u.0, epoch)), 1);
        }
    }
    bags
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_frequent::items::count_items;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn small_net() -> Network {
        let mut rng = rng_from_seed(1);
        Network::random_connected(40, 20.0, 20.0, Position::new(10.0, 10.0), 5.0, &mut rng)
    }

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = rng_from_seed(2);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank-1 item much more frequent than rank-100.
        assert!(counts[0] > 10 * counts[99].max(1));
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rng_from_seed(3);
        let mut counts = vec![0u64; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_bags_share_heavy_items() {
        let net = small_net();
        let bags = zipf_bags(&net, 200, 5000, 1.2, 4);
        let all = count_items(&bags);
        assert_eq!(all.total(), 200 * net.num_sensors() as u64);
        // Item 0 (rank 1) dominates globally.
        assert!(all.count(0) as f64 > 0.1 * all.total() as f64);
    }

    #[test]
    fn disjoint_bags_never_overlap() {
        let net = small_net();
        let bags = disjoint_uniform_bags(&net, 100, 50, 5);
        for u in net.sensor_ids() {
            for (item, _) in bags[u.index()].iter() {
                let owner = item / 50;
                assert_eq!(owner, u.0 as u64, "item {item} leaked across streams");
            }
        }
    }

    #[test]
    fn bags_are_deterministic() {
        let net = small_net();
        let a = zipf_bags(&net, 50, 100, 1.0, 9);
        let b = zipf_bags(&net, 50, 100, 1.0, 9);
        assert_eq!(a, b);
        let c = zipf_bags(&net, 50, 100, 1.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn labdata_bags_skewed_by_daylight() {
        let lab = LabData::new(11);
        let bags = labdata_bags(&lab, 200);
        let all = count_items(&bags);
        assert_eq!(all.total(), 200 * 54);
        // The discretized universe is small and skewed: some item should
        // be clearly frequent at s = 5%.
        let n = all.total() as f64;
        assert!(
            !all.items_above(0.05 * n).is_empty(),
            "no frequent items in LabData streams"
        );
    }
}
