//! The cross-epoch stream engine: panes, rings, and window emission
//! over one multi-query [`Session`].
//!
//! A [`StreamSession`] owns a [`Driver`] (which owns the `Session` and
//! the §7.1 warmup clock) plus the registered [`StreamQuery`]s. Each
//! epoch it registers every query's underlying protocol on one
//! [`QuerySet`] — so N windowed queries still cost **one topology
//! traversal** — runs the epoch through [`Driver::step_set`], and turns
//! each answer into a *pane*: the value plus that epoch's
//! contributor-envelope coverage, its [`CommStats`] delta, and whether
//! adaptation relabeled the topology afterwards. Each window folds the
//! pane into its own [`WindowAccum`] through the [`PaneAlgebra`] fold
//! and emits [`WindowReport`]s when its schedule closes.
//!
//! [`PaneAlgebra`]: crate::window::PaneAlgebra
//!
//! ## Loss, churn, and adaptation visibility
//!
//! Windows never hide degradation: a report carries every pane's
//! coverage fraction and communication accounting, the window-level
//! mean/min coverage, the number of tributary/delta relabels that
//! fired *between* its panes, and — for
//! [`StreamSession::run_under_churn`] — the nodes that joined or left
//! across its panes. A completed pane is a plain value — a later
//! relabel changes how future panes are computed, never the merged
//! history — so adaptation mid-window degrades answers visibly
//! (through coverage) rather than invalidating them.
//!
//! ## Incremental absorption
//!
//! Each window owns a [`WindowAccum`] — the O(1)-amortized state
//! machine from [`crate::window`] — so absorbing a pane costs O(1)
//! per window regardless of window length, and steady-state hops
//! allocate nothing. Reports are lean by default (window aggregates
//! plus the newest pane's [`PaneStats`]); per-pane history is opt-in
//! via [`StreamQuery::window_detailed`], which is the only thing that
//! keeps a pane ring alive on the query.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::Rng;
use td_netsim::churn::{ChurnEvents, ChurnSchedule};
use td_netsim::loss::LossModel;
use td_netsim::stats::CommStats;
use tributary_delta::adapt::AdaptAction;
use tributary_delta::driver::{Driver, Workload};
use tributary_delta::query::QuerySet;
use tributary_delta::session::Session;

use crate::query::{PaneProtocol, StreamQuery};
use crate::window::{
    AccumCounters, EpochMerge, FoldMode, FreqPane, PaneInput, PaneKind, PaneValue, QuantilePane,
    WindowAccum, WindowSpec,
};

/// Identifies one window of one registered stream query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WindowHandle {
    /// Index of the stream query (registration order).
    pub query: usize,
    /// Index of the window within the query (attachment order).
    pub window: usize,
}

/// One pane's slice of a [`WindowReport`]: the per-epoch
/// instrumentation a window answer was merged from.
#[derive(Clone, Debug)]
pub struct PaneStats {
    /// The absolute epoch the pane ran in.
    pub epoch: u64,
    /// Contributor-envelope coverage fraction of that epoch.
    pub coverage: f64,
    /// Whether adaptation relabeled the topology right after this
    /// pane's epoch.
    pub relabeled: bool,
    /// Communication accounting of that epoch's traversal — shared
    /// (`Arc`) between the ring, overlapping windows, and every report
    /// it appears in, so carrying it is a pointer bump, not a per-node
    /// counter copy.
    pub comm: Arc<CommStats>,
}

/// One emitted window answer plus everything needed to judge it.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Which window emitted.
    pub handle: WindowHandle,
    /// The underlying protocol's display name (`Arc`-shared with the
    /// session — a report carries it for a pointer bump).
    pub query_name: Arc<str>,
    /// The window shape.
    pub spec: WindowSpec,
    /// The cross-epoch merge the answer evaluates.
    pub merge: EpochMerge,
    /// First epoch merged into the window.
    pub start_epoch: u64,
    /// Last epoch merged into the window.
    pub end_epoch: u64,
    /// Panes actually merged.
    pub panes: usize,
    /// Panes of a complete window (`panes < expected_panes` marks the
    /// partial prefix a sliding window emits before filling up; equal
    /// for landmark, which is always "complete so far").
    pub expected_panes: usize,
    /// The window answer.
    pub answer: f64,
    /// Mean contributor-envelope coverage across the merged panes.
    pub coverage: f64,
    /// The worst single pane's coverage.
    pub min_coverage: f64,
    /// Tributary/delta relabels that fired *between* this window's
    /// panes. A relabel after the window's final pane is not counted
    /// here: an overlapping sliding window that still contains that
    /// pane (with a successor) will count it, while for tumbling
    /// windows it fell between windows and is counted by none.
    pub relabels: u32,
    /// Churn arrivals attributed to this window's panes (each pane's
    /// [`CommStats::nodes_joined`] delta; for landmark windows a
    /// running total since the stream began). 0 unless the run applied
    /// churn ([`StreamSession::run_under_churn`]).
    pub nodes_joined: u64,
    /// Churn departures attributed to this window's panes — the
    /// membership half of "lossy windows degrade visibly": a window
    /// whose coverage dipped because nodes left says so here.
    pub nodes_left: u64,
    /// Payload bytes across the window's panes, maintained
    /// incrementally (exact `u64` arithmetic). For landmark windows a
    /// running total since the stream began.
    pub bytes: u64,
    /// The merged set-valued frequent-items estimate, for queries whose
    /// panes are [`PaneValue::Freq`]; `None` for scalar queries.
    pub freq: Option<Arc<FreqPane>>,
    /// The merged quantile summary, for queries whose panes are
    /// [`PaneValue::Quantile`] — ask it for any rank, not just the
    /// median that [`answer`](Self::answer) carries; `None` otherwise.
    pub quantile: Option<Arc<QuantilePane>>,
    /// The newest pane's per-epoch instrumentation — always present,
    /// O(1) to carry (the `CommStats` is `Arc`-shared).
    pub last_pane: PaneStats,
    /// Full per-pane instrumentation, oldest first — populated only for
    /// windows attached via [`StreamQuery::window_detailed`]; empty
    /// (no allocation) otherwise. Lean consumers read
    /// [`last_pane`](Self::last_pane) and the window-level aggregates.
    pub pane_stats: Vec<PaneStats>,
}

impl WindowReport {
    /// Whether any merged pane missed contributors — the "degrade
    /// visibly, not silently" bit consumers should check before
    /// trusting the answer as exact.
    pub fn is_lossy(&self) -> bool {
        self.min_coverage < 1.0
    }

    /// Total payload bytes across the window's panes — for landmark
    /// reports a running total since the stream began (the landmark
    /// window never evicts).
    pub fn comm_bytes(&self) -> u64 {
        self.bytes
    }
}

/// Counters proving the sharing the engine promises: panes are built
/// per *query* per measured epoch — never per window — and windows only
/// merge, never recompute.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Epochs run (warmup included).
    pub epochs_run: u64,
    /// Measured epochs (those that produced panes).
    pub measured_epochs: u64,
    /// Panes built — exactly `measured_epochs × queries`, however many
    /// windows ride on them.
    pub panes_built: u64,
    /// Pane merge/fold operations performed across all windows.
    pub pane_merges: u64,
    /// Evictions where the subtract-on-evict exactness certificate did
    /// not hold and the window value was refolded from its pane buffer
    /// instead ([`AccumCounters::value_refolds`]). Zero in the exact
    /// integer regimes the engine is built for.
    pub value_refolds: u64,
    /// Window reports emitted.
    pub reports_emitted: u64,
    /// Sum of every built pane's coverage fraction — each measured
    /// epoch counted once per query, never re-weighted by how many
    /// windows or reports a pane lands in.
    pub pane_coverage_sum: f64,
}

impl StreamStats {
    /// Mean contributor coverage across all built panes (1.0 when no
    /// pane exists yet).
    pub fn mean_pane_coverage(&self) -> f64 {
        if self.panes_built == 0 {
            1.0
        } else {
            self.pane_coverage_sum / self.panes_built as f64
        }
    }
}

struct WindowState {
    spec: WindowSpec,
    merge: EpochMerge,
    detailed: bool,
    accum: WindowAccum,
}

/// Per-query pane bookkeeping (parallel to the session's boxed
/// protocols — split so the epoch loop can borrow protocols shared
/// while mutating rings). The ring holds per-pane *stats* only (values
/// live in the window accumulators) and exists only when a detailed
/// window needs report-time history.
struct QueryState {
    name: Arc<str>,
    kind: PaneKind,
    ring: VecDeque<PaneStats>,
    ring_need: usize,
    windows: Vec<WindowState>,
    next_seq: u64,
    /// Deregistered queries stay in place as tombstones so earlier
    /// queries' indices (and every issued [`WindowHandle`]) stay valid;
    /// inactive queries are skipped by the epoch loop.
    active: bool,
}

/// Why [`StreamSession::deregister`] refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeregisterError {
    /// No query was ever registered under that index.
    UnknownQuery,
    /// The query was already deregistered.
    AlreadyInactive,
    /// Deregistering it would leave the session with nothing to run —
    /// an epoch needs at least one active query.
    LastActiveQuery,
}

impl std::fmt::Display for DeregisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeregisterError::UnknownQuery => write!(f, "unknown stream query index"),
            DeregisterError::AlreadyInactive => write!(f, "stream query already deregistered"),
            DeregisterError::LastActiveQuery => {
                write!(f, "cannot deregister the last active stream query")
            }
        }
    }
}

/// The streaming window engine over one aggregation session.
///
/// ```ignore
/// let driver = Driver::new(SessionBuilder::new(Scheme::Td).build(&net, &mut rng), warmup);
/// let mut stream = StreamSession::new(driver);
/// let handles = stream.register(
///     StreamQuery::scalar(Sum::default())
///         .window(WindowSpec::sliding(10, 1), EpochMerge::Add)
///         .window(WindowSpec::tumbling(30), EpochMerge::Mean),
/// );
/// let reports = stream.run(&workload, &channel, epochs, &mut rng);
/// ```
pub struct StreamSession {
    driver: Driver,
    protos: Vec<Box<dyn PaneProtocol>>,
    queries: Vec<QueryState>,
    last_stats: CommStats,
    stats: StreamStats,
    mode: FoldMode,
}

impl StreamSession {
    /// Wrap a driver (its warmup epochs produce no panes). Windows run
    /// the O(1)-amortized incremental accumulators
    /// ([`FoldMode::Incremental`]) unless
    /// [`set_fold_mode`](Self::set_fold_mode) says otherwise.
    pub fn new(driver: Driver) -> Self {
        let last_stats = driver.session().stats().clone();
        StreamSession {
            driver,
            protos: Vec::new(),
            queries: Vec::new(),
            last_stats,
            stats: StreamStats::default(),
            mode: FoldMode::default(),
        }
    }

    /// Select how windows maintain their answers —
    /// [`FoldMode::Refold`] re-folds every emission from the pane
    /// buffer (the pre-incremental engine, kept as the bit-for-bit
    /// reference and bench baseline). Both modes produce identical
    /// reports on every field; only the work profile differs.
    ///
    /// # Panics
    /// Panics once any registered query has absorbed a pane — the mode
    /// is a construction-time choice, not a mid-stream switch.
    pub fn set_fold_mode(&mut self, mode: FoldMode) {
        assert!(
            self.queries.iter().all(|q| q.next_seq == 0),
            "fold mode must be chosen before the first measured epoch"
        );
        self.mode = mode;
        for q in &mut self.queries {
            for w in &mut q.windows {
                w.accum = WindowAccum::new(w.spec, w.merge, q.kind, mode);
            }
        }
    }

    /// Register a stream query, returning one handle per attached
    /// window. All the query's windows share one pane series; all
    /// registered queries share each epoch's single traversal.
    ///
    /// # Panics
    /// Panics if the query has no windows (it would produce panes
    /// nobody consumes), or if a set-valued query attaches a window
    /// with a merge law other than [`EpochMerge::Add`].
    pub fn register<P: PaneProtocol + 'static>(
        &mut self,
        query: StreamQuery<P>,
    ) -> Vec<WindowHandle> {
        assert!(
            !query.windows.is_empty(),
            "a stream query needs at least one window"
        );
        let qi = self.protos.len();
        let kind = query.proto.pane_kind();
        // Only detailed windows replay per-pane history at report time;
        // everything else rides the accumulators, so lean-only queries
        // keep no ring at all (satellite of the O(1)-hop work).
        let ring_need = query
            .windows
            .iter()
            .filter(|cfg| cfg.detailed)
            .map(|cfg| cfg.spec.ring_need())
            .max()
            .unwrap_or(0);
        let windows: Vec<WindowState> = query
            .windows
            .iter()
            .map(|cfg| WindowState {
                spec: cfg.spec,
                merge: cfg.merge,
                detailed: cfg.detailed,
                accum: WindowAccum::new(cfg.spec, cfg.merge, kind, self.mode),
            })
            .collect();
        let handles = (0..windows.len())
            .map(|wi| WindowHandle {
                query: qi,
                window: wi,
            })
            .collect();
        self.queries.push(QueryState {
            name: PaneProtocol::name(&query.proto).into(),
            kind,
            ring: VecDeque::with_capacity(if ring_need > 0 { ring_need + 1 } else { 0 }),
            ring_need,
            windows,
            next_seq: 0,
            active: true,
        });
        self.protos.push(Box::new(query.proto));
        handles
    }

    /// The wrapped driver.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// The underlying session (topology, cumulative stats).
    pub fn session(&self) -> &Session {
        self.driver.session()
    }

    /// The engine's sharing counters.
    pub fn stream_stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Number of registered stream queries, tombstoned ones included
    /// (registration indices are never reused).
    pub fn query_count(&self) -> usize {
        self.protos.len()
    }

    /// Number of queries still active (= protocols per epoch set).
    pub fn active_query_count(&self) -> usize {
        self.queries.iter().filter(|q| q.active).count()
    }

    /// Upper bound on [`WindowReport`]s one measured epoch can emit —
    /// every window of every active query fires at most once per pane.
    /// The service layer sizes outbox headroom with this.
    pub fn max_reports_per_epoch(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| q.active)
            .map(|q| q.windows.len())
            .sum()
    }

    /// Deregister a stream query by its index ([`WindowHandle::query`]).
    /// The query stops costing a bundle slot from the next epoch on and
    /// its windows stop emitting; its tombstone keeps every other
    /// query's index (and issued handles) valid. Irreversible.
    pub fn deregister(&mut self, query: usize) -> Result<(), DeregisterError> {
        let q = self
            .queries
            .get_mut(query)
            .ok_or(DeregisterError::UnknownQuery)?;
        if !q.active {
            return Err(DeregisterError::AlreadyInactive);
        }
        q.active = false;
        if self.queries.iter().all(|q| !q.active) {
            self.queries[query].active = true;
            return Err(DeregisterError::LastActiveQuery);
        }
        Ok(())
    }

    /// Apply one batch of membership transitions to the session outside
    /// a schedule ([`Session::apply_churn`] — orphans re-route, the
    /// cached plan patches, the join/leave counts land in the next
    /// pane's [`CommStats`] delta). This is the service layer's churn
    /// injection point; note it changes **structure and accounting**
    /// only — silencing absent nodes on the channel stays the loss
    /// model's job, exactly as in a hand-rolled churn loop.
    ///
    /// [`Session::apply_churn`]: tributary_delta::session::Session::apply_churn
    pub fn inject_churn(&mut self, events: &ChurnEvents) {
        self.driver.session_mut().apply_churn(events);
    }

    /// Override the underlying session's intra-epoch worker count
    /// ([`Session::set_workers`] — bit-identical on any value).
    /// `ServiceRuntime` pins its tenants to `1`: tenant-level
    /// parallelism already saturates the cores, and nested fan-out
    /// would oversubscribe them.
    ///
    /// [`Session::set_workers`]: tributary_delta::session::Session::set_workers
    pub fn set_workers(&mut self, workers: usize) {
        self.driver.session_mut().set_workers(workers);
    }

    /// Run `warmup + epochs` epochs (continuing the driver's clock),
    /// returning every window report emitted by measured epochs in
    /// emission order.
    pub fn run<W, M, R>(
        &mut self,
        workload: &W,
        model: &M,
        epochs: u64,
        rng: &mut R,
    ) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        self.run_inner(workload, model, None, epochs, rng)
    }

    /// [`run`](Self::run) under node churn: before each epoch the
    /// schedule's membership transitions are applied to the session
    /// ([`Session::apply_churn`] — orphans re-route, the plan patches)
    /// and delivery runs under [`ChurnSchedule::overlay`], so absent
    /// nodes are silent on the channel *and* routed around in the
    /// structure. Every pane's [`CommStats`] delta carries the epoch's
    /// joined/left counts, and reports total them in
    /// [`WindowReport::nodes_joined`]/[`nodes_left`] — windows spanning
    /// churn degrade visibly instead of silently.
    ///
    /// [`Session::apply_churn`]: tributary_delta::session::Session::apply_churn
    /// [`nodes_left`]: WindowReport::nodes_left
    pub fn run_under_churn<W, M, R>(
        &mut self,
        workload: &W,
        model: &M,
        churn: &ChurnSchedule,
        epochs: u64,
        rng: &mut R,
    ) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        self.run_inner(workload, model, Some(churn), epochs, rng)
    }

    /// Advance exactly **one** epoch (warmup or measured), returning
    /// the window reports that epoch emitted (none during warmup).
    ///
    /// This is the single-epoch unit [`run`](Self::run) loops over and
    /// the service layer drives directly: a tenant's session is stepped
    /// epoch-by-epoch on whatever worker owns it, interleaved with
    /// other tenants, and stays bit-identical to a batch
    /// [`run`](Self::run) because both paths *are* this method.
    pub fn step<W, M, R>(&mut self, workload: &W, model: &M, rng: &mut R) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        self.step_inner(workload, model, None, rng)
    }

    /// [`step`](Self::step) under a churn schedule: applies the epoch's
    /// membership transitions to the session and runs delivery under
    /// [`ChurnSchedule::overlay`] — the single-epoch unit
    /// [`run_under_churn`](Self::run_under_churn) loops over.
    pub fn step_under_churn<W, M, R>(
        &mut self,
        workload: &W,
        model: &M,
        churn: &ChurnSchedule,
        rng: &mut R,
    ) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        self.step_inner(workload, model, Some(churn), rng)
    }

    fn run_inner<W, M, R>(
        &mut self,
        workload: &W,
        model: &M,
        churn: Option<&ChurnSchedule>,
        epochs: u64,
        rng: &mut R,
    ) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        let remaining_warmup = self
            .driver
            .warmup()
            .saturating_sub(self.driver.next_epoch());
        let mut reports = Vec::new();
        for _ in 0..remaining_warmup + epochs {
            reports.extend(self.step_inner(workload, model, churn, rng));
        }
        reports
    }

    fn step_inner<W, M, R>(
        &mut self,
        workload: &W,
        model: &M,
        churn: Option<&ChurnSchedule>,
        rng: &mut R,
    ) -> Vec<WindowReport>
    where
        W: Workload + ?Sized,
        M: LossModel,
        R: Rng + ?Sized,
    {
        assert!(
            self.queries.iter().any(|q| q.active),
            "register at least one stream query before running"
        );
        let mut reports = Vec::new();
        let epoch = self.driver.next_epoch();
        let readings = workload.readings(epoch);
        // One set, one traversal, however many queries and windows.
        // Tombstoned queries skip their slot entirely.
        let mut set = QuerySet::new();
        let active: Vec<bool> = self.queries.iter().map(|q| q.active).collect();
        let slots: Vec<Option<usize>> = self
            .protos
            .iter()
            .zip(&active)
            .map(|(p, &on)| on.then(|| p.register(&mut set, &readings, epoch)))
            .collect();
        let mut stepped = match churn {
            Some(schedule) => {
                let events = schedule.events_at(epoch);
                self.driver.session_mut().apply_churn(&events);
                self.driver.step_set(&set, &schedule.overlay(model), rng)
            }
            None => self.driver.step_set(&set, model, rng),
        };
        let values: Vec<Option<PaneValue>> = self
            .protos
            .iter()
            .zip(&slots)
            .map(|(p, slot)| slot.map(|s| p.pane_value(&mut stepped.record.answers, s)))
            .collect();
        drop(set);

        self.stats.epochs_run += 1;
        // One allocation per epoch (the diff itself); folding it
        // back keeps `last_stats` equal to the session total
        // without cloning the full per-node vector.
        let comm = self.driver.session().stats().diff(&self.last_stats);
        self.last_stats.merge(&comm);
        if !stepped.measured {
            return reports;
        }
        self.stats.measured_epochs += 1;

        let relabeled = matches!(
            stepped.record.action,
            AdaptAction::Expanded { .. } | AdaptAction::Shrunk { .. }
        );
        let comm = Arc::new(comm);
        let coverage = stepped.record.pct_contributing;
        // Window-fold phase: every query's pane absorption and window
        // re-folds for this epoch, as one latency sample.
        let sw = td_telemetry::phase::stopwatch();
        for (qi, value) in values.into_iter().enumerate() {
            if let Some(value) = value {
                self.absorb_pane(qi, epoch, value, coverage, relabeled, &comm, &mut reports);
            }
        }
        td_telemetry::phase::record(td_telemetry::phase::Phase::WindowFold, sw);
        reports
    }

    /// Fold one measured epoch's answer into query `qi`'s pane series —
    /// one O(1)-amortized [`WindowAccum::absorb`] per window — and emit
    /// whatever windows close on it.
    #[allow(clippy::too_many_arguments)]
    fn absorb_pane(
        &mut self,
        qi: usize,
        epoch: u64,
        value: PaneValue,
        coverage: f64,
        relabeled: bool,
        comm: &Arc<CommStats>,
        reports: &mut Vec<WindowReport>,
    ) {
        let q = &mut self.queries[qi];
        let seq = q.next_seq;
        q.next_seq += 1;
        self.stats.panes_built += 1;
        self.stats.pane_coverage_sum += coverage;
        let input = PaneInput {
            epoch,
            value,
            coverage,
            relabeled,
            nodes_joined: comm.nodes_joined(),
            nodes_left: comm.nodes_left(),
            bytes: comm.total_bytes(),
        };
        let last_pane = PaneStats {
            epoch,
            coverage,
            relabeled,
            comm: Arc::clone(comm),
        };
        if q.ring_need > 0 {
            q.ring.push_back(last_pane.clone());
            // O(1) eviction: drop exactly the pane that aged out.
            while q.ring.len() > q.ring_need {
                q.ring.pop_front();
            }
        }
        let mut counters = AccumCounters::default();
        for (wi, w) in q.windows.iter_mut().enumerate() {
            let Some(ans) = w.accum.absorb(seq, &input, &mut counters) else {
                continue;
            };
            let pane_stats: Vec<PaneStats> = if w.detailed {
                let take = ans.panes.min(q.ring.len());
                q.ring.iter().skip(q.ring.len() - take).cloned().collect()
            } else {
                Vec::new()
            };
            reports.push(WindowReport {
                handle: WindowHandle {
                    query: qi,
                    window: wi,
                },
                query_name: Arc::clone(&q.name),
                spec: w.spec,
                merge: w.merge,
                start_epoch: ans.start_epoch,
                end_epoch: ans.end_epoch,
                panes: ans.panes,
                expected_panes: w.spec.full_span().unwrap_or(ans.panes),
                answer: ans.value,
                coverage: ans.coverage,
                min_coverage: ans.min_coverage,
                relabels: ans.relabels,
                nodes_joined: ans.nodes_joined,
                nodes_left: ans.nodes_left,
                bytes: ans.bytes,
                freq: ans.freq,
                quantile: ans.quantile,
                last_pane: last_pane.clone(),
                pane_stats,
            });
            self.stats.reports_emitted += 1;
        }
        self.stats.pane_merges += counters.pane_merges;
        self.stats.value_refolds += counters.value_refolds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StreamQuery;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use tributary_delta::driver::FixedReadings;
    use tributary_delta::session::{Scheme, SessionBuilder};

    fn net(seed: u64, sensors: usize) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_connected(sensors, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng)
    }

    fn stream(
        scheme: Scheme,
        net: &Network,
        warmup: u64,
        seed: u64,
    ) -> (StreamSession, rand::rngs::StdRng) {
        let mut rng = rng_from_seed(seed);
        let session = SessionBuilder::new(scheme).build(net, &mut rng);
        (StreamSession::new(Driver::new(session, warmup)), rng)
    }

    #[test]
    fn tumbling_emission_schedule_and_totals() {
        let net = net(301, 80);
        let values: Vec<u64> = vec![2; net.len()];
        let truth = 2.0 * net.num_sensors() as f64;
        let (mut ss, mut rng) = stream(Scheme::Tag, &net, 2, 302);
        let handles = ss.register(
            StreamQuery::scalar(Sum::default())
                .window_detailed(WindowSpec::tumbling(3), EpochMerge::Add),
        );
        assert_eq!(
            handles,
            vec![WindowHandle {
                query: 0,
                window: 0
            }]
        );
        let reports = ss.run(&FixedReadings(values), &NoLoss, 9, &mut rng);
        // 9 measured panes → windows close after panes 2, 5, 8.
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.panes, 3);
            assert_eq!(r.expected_panes, 3);
            // Lossless TAG: each pane is the exact sum, window = 3×.
            assert_eq!(r.answer, 3.0 * truth);
            assert_eq!(r.coverage, 1.0);
            assert!(!r.is_lossy());
            assert_eq!(r.relabels, 0);
            // Warmup epochs 0-1 produce no panes: first window spans
            // epochs 2-4.
            assert_eq!(r.start_epoch, 2 + 3 * i as u64);
            assert_eq!(r.end_epoch, 4 + 3 * i as u64);
            // Detailed window: full per-pane history in the report.
            assert_eq!(r.pane_stats.len(), 3);
            assert_eq!(r.last_pane.epoch, r.end_epoch);
            assert!(r.comm_bytes() > 0);
            assert_eq!(
                r.comm_bytes(),
                r.pane_stats
                    .iter()
                    .map(|p| p.comm.total_bytes())
                    .sum::<u64>(),
                "incremental byte total diverged from the per-pane stats"
            );
        }
        let st = ss.stream_stats();
        assert_eq!(st.epochs_run, 11);
        assert_eq!(st.measured_epochs, 9);
        assert_eq!(st.panes_built, 9);
        assert_eq!(st.reports_emitted, 3);
    }

    #[test]
    fn sliding_window_emits_partial_prefix_then_full() {
        let net = net(303, 80);
        let values: Vec<u64> = vec![1; net.len()];
        let (mut ss, mut rng) = stream(Scheme::Tag, &net, 0, 304);
        let _ = ss.register(
            StreamQuery::scalar(Sum::default()).window(WindowSpec::sliding(4, 2), EpochMerge::Mean),
        );
        let reports = ss.run(&FixedReadings(values), &NoLoss, 8, &mut rng);
        // Emissions after panes 1, 3, 5, 7: spans 2, 4, 4, 4.
        let spans: Vec<usize> = reports.iter().map(|r| r.panes).collect();
        assert_eq!(spans, vec![2, 4, 4, 4]);
        assert!(reports[0].panes < reports[0].expected_panes);
        assert_eq!(reports[1].panes, reports[1].expected_panes);
        let truth = net.num_sensors() as f64;
        for r in &reports {
            assert_eq!(r.answer, truth, "mean of identical panes");
        }
        // Overlapping windows share panes: epochs overlap across reports.
        assert_eq!(reports[1].start_epoch, 0);
        assert_eq!(reports[2].start_epoch, 2);
    }

    #[test]
    fn landmark_window_runs_from_stream_start_in_constant_state() {
        let net = net(305, 80);
        let values: Vec<u64> = vec![3; net.len()];
        let truth = 3.0 * net.num_sensors() as f64;
        let (mut ss, mut rng) = stream(Scheme::Tag, &net, 1, 306);
        let _ = ss.register(
            StreamQuery::scalar(Sum::default()).window(WindowSpec::landmark(), EpochMerge::Add),
        );
        let reports = ss.run(&FixedReadings(values), &NoLoss, 6, &mut rng);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.panes, i + 1);
            assert_eq!(r.start_epoch, 1, "landmark anchors at first measured epoch");
            assert_eq!(r.answer, (i + 1) as f64 * truth);
            // O(1) state: lean reports carry no per-pane history, just
            // the newest pane's stats.
            assert!(r.pane_stats.is_empty());
            assert_eq!(r.last_pane.epoch, r.end_epoch);
        }
        // No ring retained for lean-only queries.
        assert_eq!(ss.queries[0].ring.len(), 0);
        assert_eq!(ss.queries[0].ring.capacity(), 0);
    }

    #[test]
    fn many_windows_share_one_pane_series_and_one_traversal() {
        let net = net(307, 120);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 13).collect();
        let epochs = 12u64;
        let model = Global::new(0.15);

        // Baseline: a plain single-query driver run, same seed.
        let mut rng = rng_from_seed(308);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut driver = Driver::new(session, 0);
        driver.run_scalar(
            &Sum::default(),
            &FixedReadings(values.clone()),
            &model,
            epochs,
            |_| 0.0,
            &mut rng,
        );
        let baseline_rounds = driver.session().stats().total_rounds();

        // Stream: THREE windows over one query — still one traversal.
        let (mut ss, mut rng) = stream(Scheme::Td, &net, 0, 308);
        let handles = ss.register(
            StreamQuery::scalar(Sum::default())
                .window(WindowSpec::sliding(6, 1), EpochMerge::Add)
                .window(WindowSpec::tumbling(4), EpochMerge::Max)
                .window(WindowSpec::landmark(), EpochMerge::Mean),
        );
        assert_eq!(handles.len(), 3);
        let reports = ss.run(&FixedReadings(values), &model, epochs, &mut rng);
        let st = ss.stream_stats();
        assert_eq!(st.panes_built, epochs, "one pane per epoch per query");
        assert_eq!(
            ss.session().stats().total_rounds(),
            baseline_rounds,
            "three windows must not add traversals"
        );
        // Every window reported; handles partition the reports.
        for h in &handles {
            assert!(reports.iter().any(|r| r.handle == *h));
        }
    }

    #[test]
    fn churn_surfaces_in_reports_and_matches_a_manual_loop() {
        use td_netsim::churn::ChurnSchedule;
        let net = net(311, 150);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 5).collect();
        let schedule = ChurnSchedule::new(net.len(), 0.03, 5.0, 13);
        let model = Global::new(0.1);
        let epochs = 30u64;

        // Manual baseline: same seed, same per-epoch churn application.
        let mut rng = rng_from_seed(312);
        let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut manual = Vec::new();
        for epoch in 0..epochs {
            session.apply_churn(&schedule.events_at(epoch));
            let proto = tributary_delta::protocol::ScalarProtocol::new(Sum::default(), &values);
            let rec = session.run_epoch(&proto, &schedule.overlay(&model), epoch, &mut rng);
            manual.push(rec.output);
        }
        assert!(session.stats().nodes_left() > 0, "schedule never fired");

        // Stream engine, tumbling(1): identical answers, churn totals
        // surfaced per report.
        let (mut ss, mut rng) = stream(Scheme::Td, &net, 0, 312);
        let _ = ss.register(
            StreamQuery::scalar(Sum::default()).window(WindowSpec::tumbling(1), EpochMerge::Add),
        );
        let reports =
            ss.run_under_churn(&FixedReadings(values), &model, &schedule, epochs, &mut rng);
        let answers: Vec<f64> = reports.iter().map(|r| r.answer).collect();
        assert_eq!(answers, manual, "stream churn run diverged from manual");
        let joined: u64 = reports.iter().map(|r| r.nodes_joined).sum();
        let left: u64 = reports.iter().map(|r| r.nodes_left).sum();
        assert_eq!(left, ss.session().stats().nodes_left());
        assert_eq!(joined, ss.session().stats().nodes_joined());
        assert!(left > 0, "reports hid the churn");
        // A churn-free run reports zeros.
        let (mut quiet, mut rng) = stream(Scheme::Td, &net, 0, 313);
        let _ = quiet.register(
            StreamQuery::scalar(Sum::default()).window(WindowSpec::tumbling(1), EpochMerge::Add),
        );
        let qreports = quiet.run(&FixedReadings(vec![1; net.len()]), &model, 5, &mut rng);
        assert!(qreports
            .iter()
            .all(|r| r.nodes_left == 0 && r.nodes_joined == 0));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn windowless_query_rejected() {
        let net = net(309, 60);
        let (mut ss, _) = stream(Scheme::Tag, &net, 0, 310);
        let _ = ss.register(StreamQuery::scalar(Sum::default()));
    }
}
