//! Stream queries: any existing [`Protocol`] wrapped for cross-epoch
//! windowing.
//!
//! A [`StreamQuery`] bundles one underlying per-epoch protocol with any
//! number of windows over its answers. All windows of one query share
//! **one pane series**: the session registers the underlying protocol
//! once per epoch on the shared [`QuerySet`], so a query with five
//! windows still costs one bundle slot in the single per-epoch topology
//! traversal — windows are free-riders on panes, panes are free-riders
//! on the traversal.
//!
//! Two layers wrap a protocol:
//!
//! * [`EpochProtocolFactory`] — the typed face: build the epoch's
//!   protocol instance from the epoch's readings (it may borrow the
//!   factory itself, e.g. item-bag tables) and reduce its output to the
//!   scalar pane value.
//! * [`PaneProtocol`] — the object-safe face the session stores; every
//!   factory implements it via the blanket impl.
//!
//! [`ScalarQuery`] adapts any [`Aggregate`] in one line, mirroring
//! [`ScalarProtocol`].

use td_aggregates::traits::Aggregate;
use tributary_delta::protocol::{Protocol, ScalarProtocol};
use tributary_delta::query::{Answers, QuerySet};

use crate::window::{EpochMerge, PaneKind, PaneValue, WindowSpec};

/// The object-safe face of one underlying per-epoch protocol: what the
/// stream session stores and drives each epoch.
///
/// Implement [`EpochProtocolFactory`] instead — the blanket impl keeps
/// the typed and erased surfaces in lockstep (the same pattern as
/// `Protocol` / `DynProtocol` in the core engine).
///
/// `Send` is a supertrait so a whole [`StreamSession`] (which stores
/// these boxed) can move across threads — the service layer hands each
/// tenant's session to whichever worker shard the tenant hashes to.
///
/// [`StreamSession`]: crate::session::StreamSession
pub trait PaneProtocol: Send {
    /// Register this epoch's underlying protocol on the shared query
    /// set, returning its registration slot. The protocol may borrow
    /// `self` and `readings` for the epoch (`'e`).
    fn register<'e>(&'e self, set: &mut QuerySet<'e>, readings: &'e [u64], epoch: u64) -> usize;

    /// Extract this epoch's answer from `slot` and reduce it to the
    /// pane value.
    fn pane_value(&self, answers: &mut Answers, slot: usize) -> PaneValue;

    /// Which [`PaneKind`] this query's panes carry — fixed per query,
    /// consulted once at registration to specialize the window
    /// accumulators.
    fn pane_kind(&self) -> PaneKind;

    /// Display name (reports and CSV rows).
    fn name(&self) -> String;
}

/// Builds a typed per-epoch protocol — the generic face of
/// [`PaneProtocol`], wrapping any existing [`Protocol`].
///
/// The factory outlives every epoch, so the protocol it builds may
/// borrow factory-owned data (item bags, reading tables) as well as the
/// epoch's readings; this is exactly the concrete-lifetime shape
/// `Driver::run`'s higher-ranked callback cannot express and
/// `Driver::step_set` exists for.
pub trait EpochProtocolFactory {
    /// The underlying protocol's output type.
    type Output: 'static;

    /// The per-epoch protocol instance.
    type Proto<'e>: Protocol<Output = Self::Output> + 'e
    where
        Self: 'e;

    /// Build the protocol for one epoch over its readings.
    fn make<'e>(&'e self, readings: &'e [u64], epoch: u64) -> Self::Proto<'e>;

    /// Reduce the epoch's answer to the pane value.
    fn pane_of(&self, output: Self::Output) -> PaneValue;

    /// Which [`PaneKind`] [`pane_of`](Self::pane_of) produces.
    /// Defaults to scalar; set-valued factories override.
    fn kind(&self) -> PaneKind {
        PaneKind::Scalar
    }

    /// Display name (reports and CSV rows).
    fn label(&self) -> String;
}

impl<F: EpochProtocolFactory + Send> PaneProtocol for F {
    fn register<'e>(&'e self, set: &mut QuerySet<'e>, readings: &'e [u64], epoch: u64) -> usize {
        set.register(self.make(readings, epoch)).index()
    }

    fn pane_value(&self, answers: &mut Answers, slot: usize) -> PaneValue {
        let output = answers
            .take_erased(slot)
            .downcast::<F::Output>()
            .expect("pane slot holds an answer of a different type");
        self.pane_of(*output)
    }

    fn pane_kind(&self) -> PaneKind {
        self.kind()
    }

    fn name(&self) -> String {
        self.label()
    }
}

/// Any scalar [`Aggregate`] as a stream source: each epoch runs a
/// [`ScalarProtocol`] over that epoch's readings (a fresh clone of the
/// aggregate, exactly as `Driver::run_scalar` does, so per-epoch
/// answers are bit-identical to a non-windowed run).
#[derive(Clone, Debug)]
pub struct ScalarQuery<A>(pub A);

impl<A: Aggregate + 'static> EpochProtocolFactory for ScalarQuery<A> {
    type Output = f64;
    type Proto<'e> = ScalarProtocol<'e, A>;

    fn make<'e>(&'e self, readings: &'e [u64], _epoch: u64) -> ScalarProtocol<'e, A> {
        ScalarProtocol::new(self.0.clone(), readings)
    }

    fn pane_of(&self, output: f64) -> PaneValue {
        PaneValue::Scalar(output)
    }

    fn label(&self) -> String {
        self.0.name().to_string()
    }
}

/// One window's configuration on a [`StreamQuery`].
#[derive(Clone, Copy, Debug)]
pub struct WindowCfg {
    /// The window shape.
    pub spec: WindowSpec,
    /// The cross-epoch merge law.
    pub merge: EpochMerge,
    /// Whether reports carry full per-pane instrumentation
    /// ([`WindowReport::pane_stats`]) — opting in keeps the query's
    /// pane ring alive and clones `O(len)` stats per report, so it is
    /// off by default; lean reports still carry the newest pane's stats
    /// plus the window-level aggregates.
    ///
    /// [`WindowReport::pane_stats`]: crate::session::WindowReport::pane_stats
    pub detailed: bool,
}

/// A windowed stream query: one underlying protocol `P` plus the
/// windows attached to its shared pane series.
#[derive(Clone, Debug)]
pub struct StreamQuery<P> {
    pub(crate) proto: P,
    pub(crate) windows: Vec<WindowCfg>,
}

impl<P: PaneProtocol> StreamQuery<P> {
    /// Wrap an underlying protocol with no windows yet.
    pub fn new(proto: P) -> Self {
        StreamQuery {
            proto,
            windows: Vec::new(),
        }
    }

    /// Attach one window (builder-style; call repeatedly for several
    /// windows over the same pane series). Reports are lean: window
    /// aggregates plus the newest pane's stats, no per-pane history —
    /// see [`window_detailed`](Self::window_detailed).
    pub fn window(mut self, spec: WindowSpec, merge: EpochMerge) -> Self {
        self.windows.push(WindowCfg {
            spec,
            merge,
            detailed: false,
        });
        self
    }

    /// Attach one window whose reports carry full per-pane
    /// instrumentation (the pre-incremental engine's report shape).
    /// Costs a pane ring on the query and `O(len)` stat clones per
    /// report.
    ///
    /// # Panics
    /// Panics for [`WindowSpec::Landmark`] — a landmark window's pane
    /// history is unbounded, so per-pane detail is never retained.
    pub fn window_detailed(mut self, spec: WindowSpec, merge: EpochMerge) -> Self {
        assert!(
            !matches!(spec, WindowSpec::Landmark),
            "landmark windows keep O(1) state and cannot report per-pane detail"
        );
        self.windows.push(WindowCfg {
            spec,
            merge,
            detailed: true,
        });
        self
    }

    /// The attached windows, in attachment order.
    pub fn windows(&self) -> &[WindowCfg] {
        &self.windows
    }
}

impl<A: Aggregate + 'static> StreamQuery<ScalarQuery<A>> {
    /// A stream query over a scalar aggregate.
    pub fn scalar(agg: A) -> Self {
        StreamQuery::new(ScalarQuery(agg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_aggregates::sum::Sum;
    use tributary_delta::query::QuerySet;

    #[test]
    fn scalar_query_registers_and_extracts() {
        use td_netsim::loss::NoLoss;
        use td_netsim::network::Network;
        use td_netsim::node::Position;
        use td_netsim::rng::rng_from_seed;
        use tributary_delta::session::{Scheme, Session};

        let mut rng = rng_from_seed(11);
        let net = Network::random_connected(40, 7.0, 7.0, Position::new(3.5, 3.5), 2.5, &mut rng);
        let values: Vec<u64> = vec![2; net.len()];
        let mut session = Session::with_paper_defaults(Scheme::Tag, &net, &mut rng);

        let q = ScalarQuery(Sum::default());
        let mut set = QuerySet::new();
        let slot = q.register(&mut set, &values, 0);
        assert_eq!(slot, 0);
        assert_eq!(set.len(), 1);
        assert_eq!(PaneProtocol::name(&q), "sum");

        let mut rec = session.run_set(&set, &NoLoss, 0, &mut rng);
        // Lossless TAG: the pane value is the exact sum.
        assert_eq!(q.pane_kind(), PaneKind::Scalar);
        assert_eq!(
            q.pane_value(&mut rec.answers, slot).scalar(),
            2.0 * net.num_sensors() as f64
        );
    }

    #[test]
    fn stream_query_accumulates_windows() {
        let q = StreamQuery::scalar(Sum::default())
            .window(WindowSpec::tumbling(4), EpochMerge::Add)
            .window(WindowSpec::sliding(8, 2), EpochMerge::Mean);
        assert_eq!(q.windows().len(), 2);
    }
}
