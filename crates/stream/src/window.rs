//! Window shapes, the cross-epoch pane algebra, and the incremental
//! [`WindowAccum`] state machine.
//!
//! A *pane* is one measured epoch's contribution to a windowed query:
//! the epoch answer plus its instrumentation. Windows never re-traverse
//! history — they merge panes, and the merge must therefore be
//! associative and commutative so panes can combine in ring order, hop
//! order, or eviction order interchangeably. [`PanePartial`] is that
//! merge: the product of the scalar aggregates' tree-merge laws
//! (`Sum`/`Count` addition, `Min`/`Max` extrema, `Average`'s
//! `(sum, count)` pair) lifted to the `f64` answers epochs produce, and
//! [`EpochMerge`] selects which component a window evaluates. The
//! [`PaneAlgebra`] trait generalizes the fold beyond four scalars:
//! [`FreqPane`] carries *set-valued* per-item count estimates, so a
//! frequent-items query can be windowed like any scalar.
//!
//! ## Incremental maintenance: a hop costs O(1), not O(W)
//!
//! [`WindowAccum`] replaces the per-emission re-fold with a per-window
//! accumulator selected by merge law and window shape:
//!
//! * tumbling / landmark / `sliding(len, hop == len)` → a **running**
//!   left fold (reset at each emission for tumbling) — trivially the
//!   same fold as a from-scratch pass;
//! * sliding `hop < len`, `Add`/`Mean` → **subtract-on-evict** guarded
//!   by an exactness certificate (below);
//! * sliding `hop < len`, `Min`/`Max` → the **two-stacks** scheme
//!   ([`TwoStacks`]): amortized O(1) push/evict/query without needing
//!   an inverse.
//!
//! ### The bit-for-bit pin, honestly
//!
//! Every answer this machinery emits is pinned **bit-for-bit** equal to
//! the from-scratch left fold of the window's panes (the old engine's
//! behavior, preserved as [`FoldMode::Refold`]). Floating-point
//! subtraction does not invert floating-point addition in general, so
//! the subtract path only fires under a certificate that makes every
//! partial sum provably exact: all pane values currently in the window
//! are integer-valued with magnitude ≤ 2⁵¹ and their magnitudes sum to
//! ≤ 2⁵² — then all sums and differences are exactly representable and
//! the subtracted sum *equals* the refolded sum, bit for bit. When the
//! certificate fails (fractional multi-path estimates, overflow-scale
//! values) the eviction falls back to refolding from the window's own
//! pane buffer — O(len) for that hop, still bit-exact, counted in
//! [`AccumCounters::value_refolds`]. Pushes never need the certificate:
//! appending to a left fold *is* the left fold of the extended
//! sequence. `Min`/`Max` are selection operations (the answer is one of
//! the pane values), so [`TwoStacks`] matches the refold exactly up to
//! the IEEE `min(±0.0, ∓0.0)` tie, which pane values (sums of
//! readings) do not produce.

/// The shape of a window over the measured-epoch pane sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Non-overlapping windows of `len` panes: one answer every `len`
    /// epochs, covering exactly the panes since the previous answer.
    Tumbling {
        /// Window length in panes (≥ 1).
        len: u32,
    },
    /// Overlapping windows of `len` panes emitted every `hop` panes
    /// (`hop < len` overlaps; `hop == len` degenerates to tumbling).
    /// Until `len` panes exist the emitted window is a partial prefix.
    Sliding {
        /// Window length in panes (≥ 1).
        len: u32,
        /// Panes between emissions (≥ 1).
        hop: u32,
    },
    /// The landmark window: every answer covers all panes since the
    /// stream's first measured epoch, emitted every pane. Maintained as
    /// a running accumulator — O(1) state and merge work per epoch, no
    /// pane ring at all.
    Landmark,
}

impl WindowSpec {
    /// A tumbling window of `len` panes.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn tumbling(len: u32) -> Self {
        assert!(len >= 1, "a window needs at least one pane");
        WindowSpec::Tumbling { len }
    }

    /// A sliding window of `len` panes emitted every `hop` panes.
    ///
    /// # Panics
    /// Panics if `len` or `hop` is zero, or if `hop > len` (that would
    /// silently drop panes from every window — use tumbling plus a
    /// longer length instead).
    pub fn sliding(len: u32, hop: u32) -> Self {
        assert!(len >= 1, "a window needs at least one pane");
        assert!(hop >= 1, "a hop advances by at least one pane");
        assert!(hop <= len, "hop {hop} > len {len} would drop panes");
        WindowSpec::Sliding { len, hop }
    }

    /// The landmark window.
    pub fn landmark() -> Self {
        WindowSpec::Landmark
    }

    /// Panes the shared ring must retain for this window (0 for the
    /// landmark window, which keeps a running accumulator instead).
    pub(crate) fn ring_need(&self) -> usize {
        match *self {
            WindowSpec::Tumbling { len } | WindowSpec::Sliding { len, .. } => len as usize,
            WindowSpec::Landmark => 0,
        }
    }

    /// Whether a window closes after pane `seq` (0-based sequence number
    /// in the measured-epoch pane series).
    pub(crate) fn emits_after(&self, seq: u64) -> bool {
        match *self {
            WindowSpec::Tumbling { len } => (seq + 1).is_multiple_of(len as u64),
            WindowSpec::Sliding { hop, .. } => (seq + 1).is_multiple_of(hop as u64),
            WindowSpec::Landmark => true,
        }
    }

    /// How many panes the window closing after pane `seq` merges
    /// (the schedule tests' oracle; the engine tracks spans in
    /// [`WindowAccum`] now).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn span_at(&self, seq: u64) -> usize {
        match *self {
            WindowSpec::Tumbling { len } => len as usize,
            WindowSpec::Sliding { len, .. } => (len as u64).min(seq + 1) as usize,
            WindowSpec::Landmark => (seq + 1) as usize,
        }
    }

    /// The full pane count of a complete window (`None` for landmark,
    /// which never completes).
    pub(crate) fn full_span(&self) -> Option<usize> {
        match *self {
            WindowSpec::Tumbling { len } | WindowSpec::Sliding { len, .. } => Some(len as usize),
            WindowSpec::Landmark => None,
        }
    }

    /// Display name, e.g. `tumbling(8)` / `sliding(8,2)` / `landmark`.
    pub fn name(&self) -> String {
        match *self {
            WindowSpec::Tumbling { len } => format!("tumbling({len})"),
            WindowSpec::Sliding { len, hop } => format!("sliding({len},{hop})"),
            WindowSpec::Landmark => "landmark".to_string(),
        }
    }
}

/// Which component of the pane algebra a window's answer evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochMerge {
    /// Sum of per-epoch answers — windowed totals of `Sum`/`Count`
    /// queries ("total readings over the last 10 epochs").
    Add,
    /// Minimum of per-epoch answers (windowed `Min`).
    Min,
    /// Maximum of per-epoch answers (windowed `Max`).
    Max,
    /// Mean of per-epoch answers — windowed rates, or the
    /// average-of-averages of an `Average` query.
    Mean,
}

impl EpochMerge {
    /// Display name for reports and CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            EpochMerge::Add => "add",
            EpochMerge::Min => "min",
            EpochMerge::Max => "max",
            EpochMerge::Mean => "mean",
        }
    }
}

/// The cross-epoch window partial: every component of the pane algebra,
/// merged field-wise. Merging is associative and commutative by
/// construction — each field is one scalar aggregate's tree-merge law
/// (exactly so for `min`/`max`/`count` and for integer-valued sums;
/// up to floating-point rounding for fractional multi-path estimates).
/// A single-pane partial evaluates bit-for-bit to its pane value under
/// every [`EpochMerge`], which is what pins `tumbling(1)` to the
/// per-epoch answers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PanePartial {
    /// Sum of pane values.
    pub sum: f64,
    /// Minimum pane value.
    pub min: f64,
    /// Maximum pane value.
    pub max: f64,
    /// Number of panes merged.
    pub count: u64,
}

impl PanePartial {
    /// The partial of a single pane.
    pub fn of(value: f64) -> Self {
        PanePartial {
            sum: value,
            min: value,
            max: value,
            count: 1,
        }
    }

    /// Field-wise merge (associative + commutative ⊎).
    pub fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Evaluate the window answer under `merge`.
    pub fn evaluate(&self, merge: EpochMerge) -> f64 {
        match merge {
            EpochMerge::Add => self.sum,
            EpochMerge::Min => self.min,
            EpochMerge::Max => self.max,
            EpochMerge::Mean => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// The cross-epoch fold interface: anything that can absorb the next
/// pane of its kind in stream order (a left fold). [`PanePartial`]
/// implements it for scalar panes, [`FreqPane`] for set-valued
/// frequent-items panes; [`WindowAccum`]'s running and refold paths are
/// written against this trait so both pane kinds share one fold.
pub trait PaneAlgebra: Clone {
    /// Absorb the next pane (left-fold order: `self` is the older
    /// partial, `next` the newer pane).
    fn absorb(&mut self, next: &Self);
}

impl PaneAlgebra for PanePartial {
    fn absorb(&mut self, next: &Self) {
        self.merge(next);
    }
}

/// A set-valued pane: per-item count estimates plus the estimated
/// total, as produced by one epoch of a frequent-items query
/// (§6 / Figure 9). Merging adds counts item-wise and totals — the
/// multiset-union law lifted to estimates. Construction drops
/// non-positive counts so that an item is present iff it contributes,
/// which keeps the subtract-on-evict path's remove-at-exact-zero
/// canonical with a from-scratch fold.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FreqPane {
    counts: std::collections::BTreeMap<td_frequent::items::Item, f64>,
    total: f64,
}

impl FreqPane {
    /// Build from per-item estimates and an estimated total count.
    /// Non-positive and non-finite counts are dropped (see type docs).
    pub fn from_counts(
        counts: impl IntoIterator<Item = (td_frequent::items::Item, f64)>,
        total: f64,
    ) -> Self {
        FreqPane {
            counts: counts.into_iter().filter(|&(_, c)| c > 0.0).collect(),
            total,
        }
    }

    /// Build from a [`FreqEstimates`] answer (the §6 estimate map plus
    /// its N̂).
    ///
    /// [`FreqEstimates`]: td_frequent::multipath::FreqEstimates
    pub fn from_estimates(est: &td_frequent::multipath::FreqEstimates) -> Self {
        Self::from_counts(est.counts.iter().map(|(&u, &c)| (u, c)), est.n_est)
    }

    /// The per-item count estimates (positive entries only).
    pub fn counts(&self) -> &std::collections::BTreeMap<td_frequent::items::Item, f64> {
        &self.counts
    }

    /// The estimated total occurrence count N̂ over the merged panes.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Item-wise merge (adds counts and totals).
    pub fn merge(&mut self, other: &FreqPane) {
        for (&u, &c) in &other.counts {
            *self.counts.entry(u).or_insert(0.0) += c;
        }
        self.total += other.total;
    }

    /// Item-wise subtraction of an evicted pane. Only called under the
    /// exactness certificate, where every count is an exactly-summed
    /// integer: a count reaching exactly zero means no remaining pane
    /// contains the item, so the entry is removed — matching the map a
    /// from-scratch fold of the remaining panes would build.
    fn retract(&mut self, other: &FreqPane) {
        for (&u, &c) in &other.counts {
            if let Some(e) = self.counts.get_mut(&u) {
                *e -= c;
                if *e == 0.0 {
                    self.counts.remove(&u);
                }
            }
        }
        self.total -= other.total;
    }

    /// §7.4.3's reporting rule over the merged window: items whose
    /// estimated count exceeds `(support − eps)` of the window's
    /// estimated total N̂.
    pub fn report(&self, support: f64, eps: f64) -> Vec<td_frequent::items::Item> {
        let threshold = (support - eps) * self.total;
        self.counts
            .iter()
            .filter(|&(_, &c)| c > threshold)
            .map(|(&u, _)| u)
            .collect()
    }

    /// The pane's exactness-certificate weight and eligibility: weight
    /// bounds every partial sum this pane can contribute to (its total
    /// and its largest count), and the pane is `safe` when all of those
    /// are positive integers small enough that window sums stay exact.
    fn exactness(&self) -> (f64, bool) {
        let mut weight = self.total.abs();
        let mut safe = self.total.is_finite() && self.total >= 0.0 && self.total.fract() == 0.0;
        for &c in self.counts.values() {
            weight = weight.max(c);
            safe = safe && c.is_finite() && c.fract() == 0.0;
        }
        (weight, safe && weight <= EXACT_VALUE_MAX)
    }
}

impl PaneAlgebra for FreqPane {
    fn absorb(&mut self, next: &Self) {
        self.merge(next);
    }
}

/// A quantile pane: one epoch's merged quantile summary, as produced by
/// a `QuantileProtocol` riding a bundle slot. Merging combines the
/// summaries (populations union, uncertainties add) — the same law the
/// tree protocol uses, lifted across epochs.
///
/// The two summary families split on eviction: q-digest combine is
/// node-wise count addition and therefore *invertible*, so
/// `try_retract` subtracts an evicted pane exactly
/// (canonical with a from-scratch fold, bit for bit); GK combine is not
/// invertible, so GK panes report themselves ineligible for the
/// exactness certificate and every eviction falls back to an O(len)
/// refold — "canonicalized merge/retract where the digest supports it,
/// refold fallback otherwise".
#[derive(Clone, Debug, PartialEq)]
pub enum QuantilePane {
    /// A Greenwald–Khanna summary pane (evictions refold).
    Gk(td_quantiles::GkSummary),
    /// A q-digest summary pane (evictions subtract exactly).
    Digest(td_quantiles::QDigest),
}

impl QuantilePane {
    /// Merge another pane of the same family (union of populations).
    ///
    /// # Panics
    /// Panics on a family mismatch — one query produces one family.
    pub fn merge(&mut self, other: &QuantilePane) {
        match (&mut *self, other) {
            (QuantilePane::Gk(a), QuantilePane::Gk(b)) => *a = a.combine(b),
            (QuantilePane::Digest(a), QuantilePane::Digest(b)) => *a = a.combine(b),
            (a, b) => panic!("quantile pane family mismatch: {a:?} fed {b:?}"),
        }
    }

    /// Subtract a previously-merged pane exactly, if the family supports
    /// it: q-digest retraction is node-wise and atomic (no change on
    /// failure); GK always returns `false`.
    fn try_retract(&mut self, evicted: &QuantilePane) -> bool {
        match (self, evicted) {
            (QuantilePane::Digest(a), QuantilePane::Digest(b)) => match a.retract(b) {
                Some(r) => {
                    *a = r;
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    /// Number of readings merged into the pane.
    pub fn population(&self) -> u64 {
        match self {
            QuantilePane::Gk(s) => s.population(),
            QuantilePane::Digest(d) => d.population(),
        }
    }

    /// Self-reported absolute rank uncertainty `E` of the merged summary.
    pub fn uncertainty(&self) -> u64 {
        match self {
            QuantilePane::Gk(s) => s.uncertainty(),
            QuantilePane::Digest(d) => d.uncertainty(),
        }
    }

    /// The φ-quantile of the merged population (`None` when empty).
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        match self {
            QuantilePane::Gk(s) => s.quantile(phi),
            QuantilePane::Digest(d) => d.quantile(phi),
        }
    }

    /// Estimated rank of `value` over the merged population.
    pub fn rank(&self, value: u64) -> u64 {
        match self {
            QuantilePane::Gk(s) => s.rank(value),
            QuantilePane::Digest(d) => d.rank(value),
        }
    }

    /// Wire words of the merged summary (size accounting).
    pub fn wire_words(&self) -> usize {
        match self {
            QuantilePane::Gk(s) => s.wire_words(),
            QuantilePane::Digest(d) => d.wire_words(),
        }
    }

    /// The windowed median — the scalar face a [`WindowAnswer::value`]
    /// carries for quantile windows (0.0 for an empty pane, e.g. a
    /// window of fully-lossy epochs).
    pub fn median(&self) -> f64 {
        self.quantile(0.5).map_or(0.0, |v| v as f64)
    }

    /// Exactness-certificate weight and eligibility: population counts
    /// are exact `u64`s, so a digest pane is always eligible (the
    /// retraction itself re-checks node-wise containment atomically);
    /// GK panes are never eligible.
    fn exactness(&self) -> (f64, bool) {
        let weight = self.population() as f64;
        (
            weight,
            matches!(self, QuantilePane::Digest(_)) && weight <= EXACT_VALUE_MAX,
        )
    }
}

impl PaneAlgebra for QuantilePane {
    fn absorb(&mut self, next: &Self) {
        self.merge(next);
    }
}

/// One epoch's pane value: the scalar answer of an ordinary query, the
/// set-valued estimate map of a frequent-items query, or the quantile
/// summary of a quantile query. The set-valued variants are
/// `Arc`-shared so a pane ride through window buffers and reports is a
/// pointer bump, not a map copy.
#[derive(Clone, Debug)]
pub enum PaneValue {
    /// A scalar per-epoch answer.
    Scalar(f64),
    /// A set-valued frequent-items pane.
    Freq(std::sync::Arc<FreqPane>),
    /// A quantile-summary pane.
    Quantile(std::sync::Arc<QuantilePane>),
}

impl PaneValue {
    /// The scalar face of the pane: the value itself, a freq pane's
    /// estimated total N̂, or a quantile pane's median.
    pub fn scalar(&self) -> f64 {
        match self {
            PaneValue::Scalar(v) => *v,
            PaneValue::Freq(f) => f.total(),
            PaneValue::Quantile(q) => q.median(),
        }
    }

    /// Exactness-certificate weight and eligibility (see the module
    /// docs): the magnitude this pane adds to the window's budget, and
    /// whether its contribution is integer-valued and small enough for
    /// exact subtraction.
    fn exactness(&self) -> (f64, bool) {
        match self {
            PaneValue::Scalar(v) => (
                v.abs(),
                v.is_finite() && v.fract() == 0.0 && v.abs() <= EXACT_VALUE_MAX,
            ),
            PaneValue::Freq(f) => f.exactness(),
            PaneValue::Quantile(q) => q.exactness(),
        }
    }
}

/// Which kind of pane a query produces — chosen at registration so the
/// window accumulators can be specialized before the first pane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaneKind {
    /// Scalar `f64` panes ([`PaneValue::Scalar`]).
    Scalar,
    /// Set-valued frequent-items panes ([`PaneValue::Freq`]); windows
    /// over them must use [`EpochMerge::Add`] (multiset union).
    Freq,
    /// Quantile-summary panes ([`PaneValue::Quantile`]); windows over
    /// them must use [`EpochMerge::Add`] (population union).
    Quantile,
}

/// Largest pane magnitude the exactness certificate accepts: 2⁵¹.
/// Integer values up to here are exactly representable with headroom.
const EXACT_VALUE_MAX: f64 = 2251799813685248.0;
/// Largest window magnitude budget (sum of pane weights) the
/// certificate accepts: 2⁵². With every pane weight ≤ 2⁵¹ the budget
/// arithmetic itself stays below 2⁵³ and therefore exact, and every
/// per-item/window partial sum is an exactly-representable integer.
const EXACT_BUDGET_MAX: f64 = 4503599627370496.0;

/// How a [`WindowAccum`] maintains its answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FoldMode {
    /// O(1)-amortized incremental accumulators (the default).
    #[default]
    Incremental,
    /// Re-fold every emission from the window's pane buffer — the old
    /// engine's O(len)-per-hop behavior, kept as the bit-for-bit
    /// reference the equality proptests and the hop-throughput bench
    /// compare against. Landmark windows always run their running
    /// accumulator (a from-scratch landmark fold would be O(stream)
    /// and *is* the running fold).
    Refold,
}

/// One measured pane as the window accumulators consume it: the value
/// plus the per-epoch instrumentation that window reports aggregate.
#[derive(Clone, Debug)]
pub struct PaneInput {
    /// Absolute epoch the pane ran in.
    pub epoch: u64,
    /// The pane value.
    pub value: PaneValue,
    /// Contributor-envelope coverage fraction of the epoch.
    pub coverage: f64,
    /// Whether adaptation relabeled the topology right after the epoch.
    pub relabeled: bool,
    /// Churn arrivals in the epoch.
    pub nodes_joined: u64,
    /// Churn departures in the epoch.
    pub nodes_left: u64,
    /// Payload bytes of the epoch's traversal.
    pub bytes: u64,
}

/// Everything a closing window emits, before the session wraps it into
/// a [`WindowReport`](crate::session::WindowReport).
#[derive(Clone, Debug)]
pub struct WindowAnswer {
    /// First epoch merged.
    pub start_epoch: u64,
    /// Last epoch merged.
    pub end_epoch: u64,
    /// Panes merged.
    pub panes: usize,
    /// The window answer (for freq windows: the estimated total N̂; for
    /// quantile windows: the windowed median).
    pub value: f64,
    /// The merged set-valued estimate, for freq windows.
    pub freq: Option<std::sync::Arc<FreqPane>>,
    /// The merged quantile summary, for quantile windows (p99s and
    /// arbitrary φ come from here; `value` carries the median).
    pub quantile: Option<std::sync::Arc<QuantilePane>>,
    /// Mean pane coverage.
    pub coverage: f64,
    /// Worst single pane's coverage.
    pub min_coverage: f64,
    /// Relabels between the window's panes.
    pub relabels: u32,
    /// Churn arrivals across the window's panes.
    pub nodes_joined: u64,
    /// Churn departures across the window's panes.
    pub nodes_left: u64,
    /// Payload bytes across the window's panes.
    pub bytes: u64,
}

/// Work counters an absorb pass accumulates, so callers (the stream
/// session, the hop bench) can account merges and certificate-failure
/// refolds without the accumulator owning global stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccumCounters {
    /// Pane merge/fold operations performed.
    pub pane_merges: u64,
    /// Evictions that fell back to an O(len) refold because the
    /// exactness certificate did not hold.
    pub value_refolds: u64,
}

/// The two-stacks sliding-extremum structure (SLIDE/DABA family): a
/// *front* stack of suffix partials over the older segment and a
/// *back* running fold over the newer segment. Push and query are O(1);
/// evict is O(1) amortized — when the front empties, the whole back
/// segment is flipped into front suffix partials, touching each element
/// once per lifetime. `min`/`max` need no inverse, so this is the
/// non-invertible half of the incremental window machinery.
#[derive(Clone, Debug)]
pub struct TwoStacks {
    take_max: bool,
    /// `(value, partial)` with `partial` = fold of this value and every
    /// younger value in the front segment; the stack top (vector end)
    /// is the oldest element of the window.
    front: Vec<(f64, f64)>,
    back_partial: Option<f64>,
    back_len: usize,
}

impl TwoStacks {
    /// A sliding-minimum accumulator.
    pub fn min() -> Self {
        TwoStacks {
            take_max: false,
            front: Vec::new(),
            back_partial: None,
            back_len: 0,
        }
    }

    /// A sliding-maximum accumulator.
    pub fn max() -> Self {
        TwoStacks {
            take_max: true,
            front: Vec::new(),
            back_partial: None,
            back_len: 0,
        }
    }

    fn op(&self, a: f64, b: f64) -> f64 {
        if self.take_max {
            a.max(b)
        } else {
            a.min(b)
        }
    }

    /// Values currently held.
    pub fn len(&self) -> usize {
        self.front.len() + self.back_len
    }

    /// Whether the structure holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the newest value — O(1).
    pub fn push(&mut self, v: f64) {
        self.back_partial = Some(match self.back_partial {
            None => v,
            Some(acc) => self.op(acc, v),
        });
        self.back_len += 1;
    }

    /// Evict the oldest value — O(1) amortized. `newest_first` must
    /// yield the window's current values (the evictee included) from
    /// newest to oldest; it is only consumed when the front stack is
    /// empty and the back segment flips.
    pub fn evict(&mut self, newest_first: impl Iterator<Item = f64>) {
        if self.front.is_empty() {
            let mut partial: Option<f64> = None;
            for v in newest_first.take(self.back_len) {
                let p = match partial {
                    None => v,
                    Some(acc) => self.op(v, acc),
                };
                partial = Some(p);
                self.front.push((v, p));
            }
            self.back_partial = None;
            self.back_len = 0;
        }
        self.front.pop().expect("evict from an empty TwoStacks");
    }

    /// The current extremum — O(1).
    ///
    /// # Panics
    /// Panics when empty.
    pub fn query(&self) -> f64 {
        match (self.front.last(), self.back_partial) {
            (Some(&(_, f)), Some(b)) => self.op(f, b),
            (Some(&(_, f)), None) => f,
            (None, Some(b)) => b,
            (None, None) => panic!("query on an empty TwoStacks"),
        }
    }
}

/// Fold `rest` into `first` in left-fold order — the from-scratch
/// reference fold both pane kinds share.
fn refold<A: PaneAlgebra>(
    mut first: A,
    rest: impl Iterator<Item = A>,
    counters: &mut AccumCounters,
) -> A {
    for next in rest {
        first.absorb(&next);
        counters.pane_merges += 1;
    }
    first
}

/// The value half of a [`WindowAccum`], selected by merge law, pane
/// kind, window shape, and [`FoldMode`].
#[derive(Clone, Debug)]
enum ValueAccum {
    /// Running left fold (tumbling/landmark/`hop == len`).
    Running(Option<PanePartial>),
    /// Running left fold over set-valued panes.
    FreqRunning(Option<FreqPane>),
    /// Subtract-on-evict with the exactness certificate (`Add`/`Mean`).
    Subtract {
        sum: f64,
        budget: f64,
        unsafe_panes: u32,
    },
    /// Two-stacks sliding extremum (`Min`/`Max`).
    Stacks(TwoStacks),
    /// Subtract-on-evict over set-valued panes.
    FreqSubtract {
        acc: FreqPane,
        budget: f64,
        unsafe_panes: u32,
    },
    /// Running left fold over quantile panes.
    QuantileRunning(Option<QuantilePane>),
    /// Subtract-on-evict over quantile panes: digest panes retract
    /// exactly, GK panes fail the certificate and refold per eviction.
    QuantileSubtract {
        acc: Option<QuantilePane>,
        budget: f64,
        unsafe_panes: u32,
    },
    /// Fold the pane buffer at every emission ([`FoldMode::Refold`]).
    Refold,
    /// [`FoldMode::Refold`] over set-valued panes.
    FreqRefold,
    /// [`FoldMode::Refold`] over quantile panes.
    QuantileRefold,
}

/// Minimum-coverage tracker: a running minimum where panes never leave
/// the window (tumbling/landmark), two stacks where they do.
#[derive(Clone, Debug)]
enum MinTrack {
    Running(f64),
    Stacks(TwoStacks),
}

/// One pane as retained in a sliding window's buffer.
#[derive(Clone, Debug)]
struct PaneSlot {
    epoch: u64,
    value: PaneValue,
    /// Exactness-certificate weight (magnitude bound).
    weight: f64,
    /// Exactness-certificate eligibility.
    safe: bool,
    coverage: f64,
    relabeled: bool,
    joined: u64,
    left: u64,
    bytes: u64,
}

/// Per-window incremental state machine: absorbs one pane per measured
/// epoch, maintains the window answer and its instrumentation
/// aggregates in O(1) amortized per pane, and emits a [`WindowAnswer`]
/// whenever the window's schedule closes. See the module docs for the
/// accumulator selection and the bit-for-bit exactness discipline.
///
/// The buffer of in-window panes (sliding windows only) is the *only*
/// per-pane state retained; tumbling and landmark windows keep pure
/// running accumulators. Steady-state absorption allocates nothing:
/// the buffer and the two-stacks vectors reach their window-length
/// capacity once and are reused thereafter.
#[derive(Clone, Debug)]
pub struct WindowAccum {
    spec: WindowSpec,
    merge: EpochMerge,
    value: ValueAccum,
    /// In-window panes, oldest first (empty for running-only shapes).
    buf: std::collections::VecDeque<PaneSlot>,
    keeps_buf: bool,
    /// Tumbling-like: clear all state after each emission.
    resets: bool,
    /// Panes currently in the window (landmark: since stream start).
    panes: u64,
    start_epoch: u64,
    end_epoch: u64,
    coverage_sum: f64,
    /// Evictions since `coverage_sum` was last refolded exactly; a
    /// refresh every `len` evictions bounds floating-point drift of the
    /// running mean at amortized O(1).
    evictions_since_refresh: u32,
    min_cov: MinTrack,
    relabels: u32,
    /// Relabel flag of the newest pane — promoted into `relabels` only
    /// once a later pane arrives (a relabel after the newest pane is
    /// not *between* panes yet).
    last_relabeled: bool,
    joined: u64,
    left: u64,
    bytes: u64,
}

impl WindowAccum {
    /// Build the accumulator for one window.
    ///
    /// # Panics
    /// Panics for set-valued panes with a merge other than
    /// [`EpochMerge::Add`] — multiset union is the only law a count map
    /// supports.
    pub fn new(spec: WindowSpec, merge: EpochMerge, kind: PaneKind, mode: FoldMode) -> Self {
        assert!(
            kind == PaneKind::Scalar || merge == EpochMerge::Add,
            "set-valued panes support EpochMerge::Add only, got {merge:?}"
        );
        // `hop == len` never overlaps: it is tumbling by another name,
        // and runs the same running accumulator.
        let overlapping = matches!(spec, WindowSpec::Sliding { len, hop } if hop < len);
        let resets = match spec {
            WindowSpec::Tumbling { .. } => true,
            WindowSpec::Sliding { .. } => !overlapping,
            WindowSpec::Landmark => false,
        };
        let value = match (mode, spec, kind) {
            // Landmark's running fold IS the from-scratch fold.
            (_, WindowSpec::Landmark, PaneKind::Scalar) => ValueAccum::Running(None),
            (_, WindowSpec::Landmark, PaneKind::Freq) => ValueAccum::FreqRunning(None),
            (_, WindowSpec::Landmark, PaneKind::Quantile) => ValueAccum::QuantileRunning(None),
            (FoldMode::Refold, _, PaneKind::Scalar) => ValueAccum::Refold,
            (FoldMode::Refold, _, PaneKind::Freq) => ValueAccum::FreqRefold,
            (FoldMode::Refold, _, PaneKind::Quantile) => ValueAccum::QuantileRefold,
            _ if !overlapping => match kind {
                PaneKind::Scalar => ValueAccum::Running(None),
                PaneKind::Freq => ValueAccum::FreqRunning(None),
                PaneKind::Quantile => ValueAccum::QuantileRunning(None),
            },
            (_, _, PaneKind::Freq) => ValueAccum::FreqSubtract {
                acc: FreqPane::default(),
                budget: 0.0,
                unsafe_panes: 0,
            },
            (_, _, PaneKind::Quantile) => ValueAccum::QuantileSubtract {
                acc: None,
                budget: 0.0,
                unsafe_panes: 0,
            },
            _ => match merge {
                EpochMerge::Add | EpochMerge::Mean => ValueAccum::Subtract {
                    sum: 0.0,
                    budget: 0.0,
                    unsafe_panes: 0,
                },
                EpochMerge::Min => ValueAccum::Stacks(TwoStacks::min()),
                EpochMerge::Max => ValueAccum::Stacks(TwoStacks::max()),
            },
        };
        let keeps_buf =
            overlapping || (mode == FoldMode::Refold && !matches!(spec, WindowSpec::Landmark));
        // The min-coverage path depends on the window *shape* only —
        // never on the fold mode — so Incremental and Refold reports
        // stay bit-identical on every field.
        let min_cov = if overlapping {
            MinTrack::Stacks(TwoStacks::min())
        } else {
            MinTrack::Running(f64::INFINITY)
        };
        let cap = spec.full_span().unwrap_or(0) + 1;
        WindowAccum {
            spec,
            merge,
            value,
            buf: std::collections::VecDeque::with_capacity(if keeps_buf { cap } else { 0 }),
            keeps_buf,
            resets,
            panes: 0,
            start_epoch: 0,
            end_epoch: 0,
            coverage_sum: 0.0,
            evictions_since_refresh: 0,
            min_cov,
            relabels: 0,
            last_relabeled: false,
            joined: 0,
            left: 0,
            bytes: 0,
        }
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Panes currently held in the window buffer (0 for running-only
    /// shapes — the allocation pin asserts this stays bounded).
    pub fn buffered_panes(&self) -> usize {
        self.buf.len()
    }

    /// Current capacity of the pane buffer, exposed so tests can pin
    /// that steady-state hops never grow it.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Absorb pane `seq` (0-based sequence number in the measured-epoch
    /// pane series) and return the window answer if the window closes
    /// on it.
    pub fn absorb(
        &mut self,
        seq: u64,
        pane: &PaneInput,
        counters: &mut AccumCounters,
    ) -> Option<WindowAnswer> {
        // -- push ------------------------------------------------------
        if self.panes > 0 && self.last_relabeled {
            self.relabels += 1;
        }
        self.last_relabeled = pane.relabeled;
        if self.panes == 0 {
            self.start_epoch = pane.epoch;
        }
        self.end_epoch = pane.epoch;
        self.panes += 1;
        self.coverage_sum += pane.coverage;
        match &mut self.min_cov {
            MinTrack::Running(m) => *m = m.min(pane.coverage),
            MinTrack::Stacks(s) => s.push(pane.coverage),
        }
        self.joined += pane.nodes_joined;
        self.left += pane.nodes_left;
        self.bytes += pane.bytes;
        let (weight, safe) = pane.value.exactness();
        self.push_value(pane, weight, safe, counters);
        if self.keeps_buf {
            self.buf.push_back(PaneSlot {
                epoch: pane.epoch,
                value: pane.value.clone(),
                weight,
                safe,
                coverage: pane.coverage,
                relabeled: pane.relabeled,
                joined: pane.nodes_joined,
                left: pane.nodes_left,
                bytes: pane.bytes,
            });
        }
        // -- evict -----------------------------------------------------
        if let Some(len) = self.spec.full_span() {
            while self.buf.len() > len {
                self.evict_oldest(len as u32, counters);
            }
        }
        // -- emit ------------------------------------------------------
        if !self.spec.emits_after(seq) {
            return None;
        }
        let answer = self.emit(counters);
        if self.resets {
            self.reset();
        }
        Some(answer)
    }

    fn push_value(&mut self, pane: &PaneInput, weight: f64, safe: bool, c: &mut AccumCounters) {
        match (&mut self.value, &pane.value) {
            (ValueAccum::Running(acc), PaneValue::Scalar(v)) => match acc {
                None => *acc = Some(PanePartial::of(*v)),
                Some(a) => {
                    a.merge(&PanePartial::of(*v));
                    c.pane_merges += 1;
                }
            },
            (ValueAccum::FreqRunning(acc), PaneValue::Freq(f)) => match acc {
                None => *acc = Some(f.as_ref().clone()),
                Some(a) => {
                    a.merge(f);
                    c.pane_merges += 1;
                }
            },
            (
                ValueAccum::Subtract {
                    sum,
                    budget,
                    unsafe_panes,
                },
                PaneValue::Scalar(v),
            ) => {
                // Appending to a left fold is the left fold of the
                // extended sequence — exact-extension needs no
                // certificate.
                *sum += v;
                *budget += weight;
                *unsafe_panes += u32::from(!safe);
                c.pane_merges += 1;
            }
            (ValueAccum::Stacks(st), PaneValue::Scalar(v)) => {
                st.push(*v);
                c.pane_merges += 1;
            }
            (
                ValueAccum::FreqSubtract {
                    acc,
                    budget,
                    unsafe_panes,
                },
                PaneValue::Freq(f),
            ) => {
                acc.merge(f);
                *budget += weight;
                *unsafe_panes += u32::from(!safe);
                c.pane_merges += 1;
            }
            (ValueAccum::QuantileRunning(acc), PaneValue::Quantile(q)) => match acc {
                None => *acc = Some(q.as_ref().clone()),
                Some(a) => {
                    a.merge(q);
                    c.pane_merges += 1;
                }
            },
            (
                ValueAccum::QuantileSubtract {
                    acc,
                    budget,
                    unsafe_panes,
                },
                PaneValue::Quantile(q),
            ) => {
                match acc {
                    None => *acc = Some(q.as_ref().clone()),
                    Some(a) => a.merge(q),
                }
                *budget += weight;
                *unsafe_panes += u32::from(!safe);
                c.pane_merges += 1;
            }
            (ValueAccum::Refold | ValueAccum::FreqRefold | ValueAccum::QuantileRefold, _) => {}
            (accum, value) => panic!("pane kind mismatch: {accum:?} fed {value:?}"),
        }
    }

    /// Drop the oldest buffered pane from every aggregate. Runs only
    /// for windows that keep a buffer, with at least two panes present
    /// (`buf.len() > len ≥ 1`), so the evictee always has a successor.
    fn evict_oldest(&mut self, len: u32, counters: &mut AccumCounters) {
        let front = self.buf.front().expect("evict with an empty buffer");
        // The evictee is interior (it has a successor), so its relabel
        // flag was promoted at that successor's push — undo it, and the
        // exact integer aggregates, directly.
        self.relabels -= u32::from(front.relabeled);
        self.joined -= front.joined;
        self.left -= front.left;
        self.bytes -= front.bytes;
        match &mut self.value {
            ValueAccum::Subtract {
                sum,
                budget,
                unsafe_panes,
            } => {
                if *unsafe_panes == 0 && *budget <= EXACT_BUDGET_MAX {
                    // Certificate holds: both the running sum and the
                    // refolded sum equal the exact integer sum of the
                    // remaining panes, so subtraction IS the refold.
                    let PaneValue::Scalar(v) = front.value else {
                        unreachable!("scalar accumulator holds scalar panes")
                    };
                    *sum -= v;
                    *budget -= front.weight;
                } else {
                    counters.value_refolds += 1;
                    let (mut s, mut b, mut u) = (0.0, 0.0, 0u32);
                    for p in self.buf.iter().skip(1) {
                        let PaneValue::Scalar(v) = p.value else {
                            unreachable!("scalar accumulator holds scalar panes")
                        };
                        s += v;
                        b += p.weight;
                        u += u32::from(!p.safe);
                        counters.pane_merges += 1;
                    }
                    *sum = s;
                    *budget = b;
                    *unsafe_panes = u;
                }
            }
            ValueAccum::Stacks(st) => {
                st.evict(self.buf.iter().rev().map(|p| match p.value {
                    PaneValue::Scalar(v) => v,
                    _ => unreachable!("scalar accumulator holds scalar panes"),
                }));
            }
            ValueAccum::FreqSubtract {
                acc,
                budget,
                unsafe_panes,
            } => {
                let PaneValue::Freq(f) = &front.value else {
                    unreachable!("freq accumulator holds freq panes")
                };
                if *unsafe_panes == 0 && *budget <= EXACT_BUDGET_MAX {
                    acc.retract(f);
                    *budget -= front.weight;
                } else {
                    counters.value_refolds += 1;
                    let mut rest = self.buf.iter().skip(1).map(|p| match &p.value {
                        PaneValue::Freq(f) => f.as_ref().clone(),
                        _ => unreachable!("freq accumulator holds freq panes"),
                    });
                    let first = rest.next().expect("eviction leaves at least one pane");
                    *acc = refold(first, rest, counters);
                    let (mut b, mut u) = (0.0, 0u32);
                    for p in self.buf.iter().skip(1) {
                        b += p.weight;
                        u += u32::from(!p.safe);
                    }
                    *budget = b;
                    *unsafe_panes = u;
                }
            }
            ValueAccum::QuantileSubtract {
                acc,
                budget,
                unsafe_panes,
            } => {
                let PaneValue::Quantile(q) = &front.value else {
                    unreachable!("quantile accumulator holds quantile panes")
                };
                // The retraction itself re-verifies node-wise containment
                // and is atomic, so a digest pane that somehow fails just
                // drops to the refold below.
                let retracted = *unsafe_panes == 0
                    && *budget <= EXACT_BUDGET_MAX
                    && acc.as_mut().is_some_and(|a| a.try_retract(q));
                if retracted {
                    *budget -= front.weight;
                } else {
                    counters.value_refolds += 1;
                    let mut rest = self.buf.iter().skip(1).map(|p| match &p.value {
                        PaneValue::Quantile(q) => q.as_ref().clone(),
                        _ => unreachable!("quantile accumulator holds quantile panes"),
                    });
                    let first = rest.next().expect("eviction leaves at least one pane");
                    *acc = Some(refold(first, rest, counters));
                    let (mut b, mut u) = (0.0, 0u32);
                    for p in self.buf.iter().skip(1) {
                        b += p.weight;
                        u += u32::from(!p.safe);
                    }
                    *budget = b;
                    *unsafe_panes = u;
                }
            }
            ValueAccum::Refold | ValueAccum::FreqRefold | ValueAccum::QuantileRefold => {}
            ValueAccum::Running(_)
            | ValueAccum::FreqRunning(_)
            | ValueAccum::QuantileRunning(_) => {
                unreachable!("running accumulators never evict")
            }
        }
        if let MinTrack::Stacks(s) = &mut self.min_cov {
            s.evict(self.buf.iter().rev().map(|p| p.coverage));
        }
        let slot = self.buf.pop_front().expect("buffer emptied mid-evict");
        self.panes -= 1;
        self.coverage_sum -= slot.coverage;
        self.start_epoch = self
            .buf
            .front()
            .map(|p| p.epoch)
            .expect("eviction leaves at least one pane");
        // Bound the running coverage mean's floating-point drift: refold
        // it exactly every `len` evictions (amortized O(1) per pane).
        self.evictions_since_refresh += 1;
        if self.evictions_since_refresh >= len {
            self.coverage_sum = self.buf.iter().map(|p| p.coverage).sum();
            self.evictions_since_refresh = 0;
        }
    }

    fn emit(&mut self, counters: &mut AccumCounters) -> WindowAnswer {
        let (value, freq, quantile) = match &self.value {
            ValueAccum::Running(acc) => (
                acc.as_ref()
                    .expect("window emitted with no panes")
                    .evaluate(self.merge),
                None,
                None,
            ),
            ValueAccum::FreqRunning(acc) => {
                let f = acc.clone().expect("window emitted with no panes");
                (f.total(), Some(std::sync::Arc::new(f)), None)
            }
            ValueAccum::QuantileRunning(acc) => {
                let q = acc.clone().expect("window emitted with no panes");
                (q.median(), None, Some(std::sync::Arc::new(q)))
            }
            ValueAccum::Subtract { sum, .. } => (
                match self.merge {
                    EpochMerge::Add => *sum,
                    // The same expression `PanePartial::evaluate` uses,
                    // over the same bit-exact sum.
                    EpochMerge::Mean => *sum / self.panes as f64,
                    _ => unreachable!("subtract accumulator built for Add/Mean only"),
                },
                None,
                None,
            ),
            ValueAccum::Stacks(st) => (st.query(), None, None),
            ValueAccum::FreqSubtract { acc, .. } => {
                (acc.total(), Some(std::sync::Arc::new(acc.clone())), None)
            }
            ValueAccum::QuantileSubtract { acc, .. } => {
                let q = acc.clone().expect("window emitted with no panes");
                (q.median(), None, Some(std::sync::Arc::new(q)))
            }
            ValueAccum::Refold => {
                let mut vals = self.buf.iter().map(|p| match p.value {
                    PaneValue::Scalar(v) => PanePartial::of(v),
                    _ => unreachable!("scalar accumulator holds scalar panes"),
                });
                let first = vals.next().expect("window emitted with no panes");
                (
                    refold(first, vals, counters).evaluate(self.merge),
                    None,
                    None,
                )
            }
            ValueAccum::FreqRefold => {
                let mut vals = self.buf.iter().map(|p| match &p.value {
                    PaneValue::Freq(f) => f.as_ref().clone(),
                    _ => unreachable!("freq accumulator holds freq panes"),
                });
                let first = vals.next().expect("window emitted with no panes");
                let f = refold(first, vals, counters);
                (f.total(), Some(std::sync::Arc::new(f)), None)
            }
            ValueAccum::QuantileRefold => {
                let mut vals = self.buf.iter().map(|p| match &p.value {
                    PaneValue::Quantile(q) => q.as_ref().clone(),
                    _ => unreachable!("quantile accumulator holds quantile panes"),
                });
                let first = vals.next().expect("window emitted with no panes");
                let q = refold(first, vals, counters);
                (q.median(), None, Some(std::sync::Arc::new(q)))
            }
        };
        WindowAnswer {
            start_epoch: self.start_epoch,
            end_epoch: self.end_epoch,
            panes: self.panes as usize,
            value,
            freq,
            quantile,
            coverage: self.coverage_sum / self.panes as f64,
            min_coverage: match &self.min_cov {
                MinTrack::Running(m) => *m,
                MinTrack::Stacks(s) => s.query(),
            },
            relabels: self.relabels,
            nodes_joined: self.joined,
            nodes_left: self.left,
            bytes: self.bytes,
        }
    }

    fn reset(&mut self) {
        self.panes = 0;
        self.coverage_sum = 0.0;
        self.evictions_since_refresh = 0;
        self.relabels = 0;
        self.joined = 0;
        self.left = 0;
        self.bytes = 0;
        self.buf.clear();
        match &mut self.min_cov {
            MinTrack::Running(m) => *m = f64::INFINITY,
            MinTrack::Stacks(_) => unreachable!("resetting windows track a running minimum"),
        }
        match &mut self.value {
            ValueAccum::Running(acc) => *acc = None,
            ValueAccum::FreqRunning(acc) => *acc = None,
            ValueAccum::QuantileRunning(acc) => *acc = None,
            ValueAccum::Refold | ValueAccum::FreqRefold | ValueAccum::QuantileRefold => {}
            _ => unreachable!("resetting windows run running or refold accumulators"),
        }
        // `last_relabeled` survives the reset unpromoted: a relabel
        // after the previous window's final pane fell *between* windows
        // and is counted by neither.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use td_aggregates::laws::merge_all;
    use td_aggregates::minmax::{Max, Min};
    use td_aggregates::sum::Sum;
    use td_aggregates::traits::Aggregate;

    fn fold(values: &[f64]) -> PanePartial {
        let mut acc = PanePartial::of(values[0]);
        for &v in &values[1..] {
            acc.merge(&PanePartial::of(v));
        }
        acc
    }

    #[test]
    fn single_pane_evaluates_to_its_value_exactly() {
        for v in [0.0, -3.25, 1234.5678, 1e-12] {
            let p = PanePartial::of(v);
            for m in [
                EpochMerge::Add,
                EpochMerge::Min,
                EpochMerge::Max,
                EpochMerge::Mean,
            ] {
                assert_eq!(p.evaluate(m).to_bits(), v.to_bits(), "{m:?} on {v}");
            }
        }
    }

    #[test]
    fn spec_emission_schedule() {
        let t = WindowSpec::tumbling(3);
        let emits: Vec<bool> = (0..7).map(|s| t.emits_after(s)).collect();
        assert_eq!(emits, [false, false, true, false, false, true, false]);
        assert_eq!(t.span_at(2), 3);

        let s = WindowSpec::sliding(4, 2);
        let emits: Vec<bool> = (0..6).map(|q| s.emits_after(q)).collect();
        assert_eq!(emits, [false, true, false, true, false, true]);
        // Partial prefix until 4 panes exist.
        assert_eq!(s.span_at(1), 2);
        assert_eq!(s.span_at(3), 4);
        assert_eq!(s.span_at(5), 4);

        let l = WindowSpec::landmark();
        assert!(l.emits_after(0) && l.emits_after(9));
        assert_eq!(l.span_at(9), 10);
        assert_eq!(l.ring_need(), 0);
    }

    #[test]
    #[should_panic(expected = "would drop panes")]
    fn sliding_hop_beyond_len_rejected() {
        let _ = WindowSpec::sliding(2, 3);
    }

    // On integer-valued panes the Add/Min/Max components coincide with
    // the corresponding `td_aggregates` tree-merge laws — the window
    // algebra *is* the aggregate merge law lifted across epochs.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pane_merge_matches_aggregate_merge_laws(
            values in proptest::collection::vec(0u64..1_000_000, 1..24),
        ) {
            let readings: Vec<(u32, u64)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u32 + 1, v))
                .collect();
            let panes: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let acc = fold(&panes);

            let sum = Sum::default();
            let sum_partial = merge_all(&sum, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Add), sum.evaluate_tree(&sum_partial));
            let min_partial = merge_all(&Min, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Min), Min.evaluate_tree(&min_partial));
            let max_partial = merge_all(&Max, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Max), Max.evaluate_tree(&max_partial));
        }

        #[test]
        fn pane_merge_is_order_and_grouping_invariant(
            values in proptest::collection::vec(0u64..1_000_000, 2..24),
            split in 1usize..23,
            rotate in 0usize..23,
        ) {
            // Integer-valued panes: f64 addition is exact below 2^53, so
            // associativity/commutativity hold bit-for-bit — the same
            // precondition the aggregates' own merge laws rely on.
            let panes: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let forward = fold(&panes);

            let mut reversed: Vec<f64> = panes.clone();
            reversed.reverse();
            prop_assert_eq!(forward, fold(&reversed));

            let mut rotated = panes.clone();
            rotated.rotate_left(rotate % panes.len());
            prop_assert_eq!(forward, fold(&rotated));

            // Grouping: (prefix ⊎) ⊎ (suffix ⊎) = linear fold.
            let split = split % (panes.len() - 1) + 1;
            let mut grouped = fold(&panes[..split]);
            grouped.merge(&fold(&panes[split..]));
            prop_assert_eq!(forward, grouped);
        }

        /// The two-stacks structure against a naive scan of the live
        /// window, bit-for-bit at every step, for min and max.
        #[test]
        fn two_stacks_matches_naive_scan(
            values in proptest::collection::vec(-100_000i64..100_000, 1..200),
            window in 1usize..24,
        ) {
            let mut st_min = TwoStacks::min();
            let mut st_max = TwoStacks::max();
            let mut buf: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
            for &raw in &values {
                let v = raw as f64;
                buf.push_back(v);
                st_min.push(v);
                st_max.push(v);
                while buf.len() > window {
                    // Same call shape as WindowAccum: the evictee is
                    // still in the buffer when the back segment flips.
                    st_min.evict(buf.iter().rev().copied());
                    st_max.evict(buf.iter().rev().copied());
                    buf.pop_front();
                }
                prop_assert_eq!(st_min.len(), buf.len());
                let naive_min = buf.iter().copied().fold(f64::INFINITY, f64::min);
                let naive_max = buf.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(st_min.query().to_bits(), naive_min.to_bits());
                prop_assert_eq!(st_max.query().to_bits(), naive_max.to_bits());
            }
        }

        /// The accumulator state machine against [`FoldMode::Refold`]
        /// on every answer field, for every merge law, over random
        /// sliding shapes — with integer panes (exercising the exact
        /// subtract path) and fractional panes (exercising the
        /// certificate-failure refold fallback).
        #[test]
        fn window_accum_incremental_equals_refold(
            raw in proptest::collection::vec(-5_000i64..5_000, 4..120),
            len in 2u32..10,
            hop_raw in 1u32..10,
            fractional in any::<bool>(),
        ) {
            let hop = 1 + hop_raw % len;
            for merge in [
                EpochMerge::Add,
                EpochMerge::Mean,
                EpochMerge::Min,
                EpochMerge::Max,
            ] {
                let spec = WindowSpec::sliding(len, hop);
                let mut inc =
                    WindowAccum::new(spec, merge, PaneKind::Scalar, FoldMode::Incremental);
                let mut rf = WindowAccum::new(spec, merge, PaneKind::Scalar, FoldMode::Refold);
                let (mut ci, mut cr) = (AccumCounters::default(), AccumCounters::default());
                for (seq, &v) in raw.iter().enumerate() {
                    let tag = (v.unsigned_abs() % 3) as u32;
                    let value = if fractional { v as f64 + 0.5 } else { v as f64 };
                    let pane = PaneInput {
                        epoch: seq as u64,
                        value: PaneValue::Scalar(value),
                        coverage: [1.0, 0.9, 0.75][tag as usize],
                        relabeled: tag == 2,
                        nodes_joined: u64::from(tag == 1),
                        nodes_left: u64::from(tag == 2),
                        bytes: 100 + v.unsigned_abs(),
                    };
                    let a = inc.absorb(seq as u64, &pane, &mut ci);
                    let b = rf.absorb(seq as u64, &pane, &mut cr);
                    prop_assert_eq!(a.is_some(), b.is_some(), "schedule diverged at {}", seq);
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert_eq!(a.value.to_bits(), b.value.to_bits(),
                            "{merge:?} value diverged at seq {}", seq);
                        prop_assert_eq!(a.coverage.to_bits(), b.coverage.to_bits());
                        prop_assert_eq!(a.min_coverage.to_bits(), b.min_coverage.to_bits());
                        prop_assert_eq!(
                            (a.start_epoch, a.end_epoch, a.panes),
                            (b.start_epoch, b.end_epoch, b.panes)
                        );
                        prop_assert_eq!(
                            (a.relabels, a.nodes_joined, a.nodes_left, a.bytes),
                            (b.relabels, b.nodes_joined, b.nodes_left, b.bytes)
                        );
                    }
                }
                if !fractional && matches!(merge, EpochMerge::Add | EpochMerge::Mean) {
                    // Small integer panes: the certificate always
                    // holds, so every eviction stays on the O(1) path.
                    prop_assert_eq!(ci.value_refolds, 0);
                } else if fractional
                    && matches!(merge, EpochMerge::Add | EpochMerge::Mean)
                    && hop < len
                    && raw.len() as u32 > len
                {
                    // Overlapping window + fractional panes: evictions
                    // happen and every one fails the certificate — and
                    // the answers above still pinned bit-for-bit.
                    prop_assert!(ci.value_refolds > 0);
                }
                prop_assert_eq!(cr.value_refolds, 0);
            }
        }
    }

    /// Set-valued panes: retract after merges equals a from-scratch
    /// fold, with exact-zero counts canonicalized away.
    #[test]
    fn freq_pane_retract_matches_refold() {
        let panes: Vec<FreqPane> = (0..6u64)
            .map(|i| FreqPane::from_counts([(1, 10.0 + i as f64), (2 + i, 4.0)], 30.0 + i as f64))
            .collect();
        // Window [1..6): merge all, retract pane 0 — vs folding 1..6.
        let mut acc = panes[0].clone();
        for p in &panes[1..] {
            acc.merge(p);
        }
        acc.retract(&panes[0]);
        let mut expect = panes[1].clone();
        for p in &panes[2..] {
            expect.merge(p);
        }
        assert_eq!(acc.total().to_bits(), expect.total().to_bits());
        let got: Vec<(u64, u64)> = acc
            .counts()
            .iter()
            .map(|(&u, &c)| (u, c.to_bits()))
            .collect();
        let want: Vec<(u64, u64)> = expect
            .counts()
            .iter()
            .map(|(&u, &c)| (u, c.to_bits()))
            .collect();
        // Item 2 (only in pane 0) must have vanished, not linger at 0.
        assert!(!acc.counts().contains_key(&2));
        assert_eq!(got, want);
        // Construction canonicalizes non-positive counts away.
        let canon = FreqPane::from_counts([(7, 0.0), (8, -1.0), (9, 2.0)], 2.0);
        assert_eq!(canon.counts().len(), 1);
    }

    /// Quantile panes: digest retraction after merges equals a
    /// from-scratch fold bit-for-bit (node-wise exact inverse), and GK
    /// panes always decline the subtract path.
    #[test]
    fn quantile_pane_retract_matches_refold() {
        let panes: Vec<QuantilePane> = (0..6u64)
            .map(|i| {
                let vals: Vec<u64> = (0..40).map(|j| (i * 37 + j * 11) % 1024).collect();
                QuantilePane::Digest(td_quantiles::QDigest::exact(&vals, 10))
            })
            .collect();
        let mut acc = panes[0].clone();
        for p in &panes[1..] {
            acc.merge(p);
        }
        assert!(acc.try_retract(&panes[0]));
        let mut expect = panes[1].clone();
        for p in &panes[2..] {
            expect.merge(p);
        }
        assert_eq!(acc, expect);
        let mut gk = QuantilePane::Gk(td_quantiles::GkSummary::exact(&[1, 2, 3]));
        let gk_other = gk.clone();
        assert!(!gk.try_retract(&gk_other));
    }

    proptest! {
        /// Incremental quantile windows (digest subtract-on-evict, GK
        /// per-evict refold) match from-scratch refold bit-for-bit, and
        /// the counters confirm which path ran: digests never refold,
        /// GK refolds on every eviction.
        #[test]
        fn incremental_quantile_matches_refold(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u64..1024, 8..20), 6..30),
            len in 2u32..8,
            hop_raw in 1u32..8,
            digest in any::<bool>(),
        ) {
            let hop = 1 + hop_raw % len;
            let spec = WindowSpec::sliding(len, hop);
            let mut inc =
                WindowAccum::new(spec, EpochMerge::Add, PaneKind::Quantile, FoldMode::Incremental);
            let mut rf =
                WindowAccum::new(spec, EpochMerge::Add, PaneKind::Quantile, FoldMode::Refold);
            let (mut ci, mut cr) = (AccumCounters::default(), AccumCounters::default());
            for (seq, vals) in raw.iter().enumerate() {
                let pane = if digest {
                    QuantilePane::Digest(td_quantiles::QDigest::exact(vals, 10))
                } else {
                    QuantilePane::Gk(td_quantiles::GkSummary::exact(vals))
                };
                let input = PaneInput {
                    epoch: seq as u64,
                    value: PaneValue::Quantile(std::sync::Arc::new(pane)),
                    coverage: 1.0,
                    relabeled: false,
                    nodes_joined: 0,
                    nodes_left: 0,
                    bytes: 64,
                };
                let a = inc.absorb(seq as u64, &input, &mut ci);
                let b = rf.absorb(seq as u64, &input, &mut cr);
                prop_assert_eq!(a.is_some(), b.is_some(), "schedule diverged at {}", seq);
                if let (Some(a), Some(b)) = (a, b) {
                    prop_assert_eq!(a.value.to_bits(), b.value.to_bits(),
                        "median diverged at seq {}", seq);
                    prop_assert_eq!(a.quantile.as_deref(), b.quantile.as_deref());
                }
            }
            if digest {
                prop_assert_eq!(ci.value_refolds, 0);
            } else if hop < len && raw.len() as u32 > len {
                // Overlapping GK window: evictions happen and every one
                // refolds — and the answers above still pinned
                // bit-for-bit.
                prop_assert!(ci.value_refolds > 0);
            }
            prop_assert_eq!(cr.value_refolds, 0);
        }
    }

    /// The steady-state allocation pin (the stream-layer sibling of the
    /// runner's pool pins): after the window fills, thousands more hops
    /// neither grow the pane buffer nor the two-stacks front stack —
    /// O(1) work per hop and zero allocation.
    #[test]
    fn steady_state_hops_never_allocate() {
        for merge in [
            EpochMerge::Add,
            EpochMerge::Mean,
            EpochMerge::Min,
            EpochMerge::Max,
        ] {
            let mut acc = WindowAccum::new(
                WindowSpec::sliding(64, 1),
                merge,
                PaneKind::Scalar,
                FoldMode::Incremental,
            );
            let mut c = AccumCounters::default();
            let drive = |acc: &mut WindowAccum, c: &mut AccumCounters, lo: u64, hi: u64| {
                for seq in lo..hi {
                    let pane = PaneInput {
                        epoch: seq,
                        value: PaneValue::Scalar((seq % 97) as f64),
                        coverage: 1.0,
                        relabeled: false,
                        nodes_joined: 0,
                        nodes_left: 0,
                        bytes: 64,
                    };
                    let _ = acc.absorb(seq, &pane, c);
                }
            };
            drive(&mut acc, &mut c, 0, 200);
            let buf_cap = acc.buffer_capacity();
            let front_cap = match &acc.value {
                ValueAccum::Stacks(st) => st.front.capacity(),
                _ => 0,
            };
            drive(&mut acc, &mut c, 200, 10_200);
            assert_eq!(acc.buffered_panes(), 64);
            assert_eq!(
                acc.buffer_capacity(),
                buf_cap,
                "{merge:?}: pane buffer grew"
            );
            let front_cap_after = match &acc.value {
                ValueAccum::Stacks(st) => st.front.capacity(),
                _ => 0,
            };
            assert_eq!(front_cap_after, front_cap, "{merge:?}: front stack grew");
            if matches!(merge, EpochMerge::Add | EpochMerge::Mean) {
                assert_eq!(
                    c.value_refolds, 0,
                    "{merge:?}: integer panes must never leave the O(1) path"
                );
            }
        }
    }
}
