//! Window shapes and the cross-epoch pane algebra.
//!
//! A *pane* is one measured epoch's contribution to a windowed query:
//! the epoch answer plus its instrumentation. Windows never re-traverse
//! history — they merge panes, and the merge must therefore be
//! associative and commutative so panes can combine in ring order, hop
//! order, or eviction order interchangeably. [`PanePartial`] is that
//! merge: the product of the scalar aggregates' tree-merge laws
//! (`Sum`/`Count` addition, `Min`/`Max` extrema, `Average`'s
//! `(sum, count)` pair) lifted to the `f64` answers epochs produce, and
//! [`EpochMerge`] selects which component a window evaluates.

/// The shape of a window over the measured-epoch pane sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Non-overlapping windows of `len` panes: one answer every `len`
    /// epochs, covering exactly the panes since the previous answer.
    Tumbling {
        /// Window length in panes (≥ 1).
        len: u32,
    },
    /// Overlapping windows of `len` panes emitted every `hop` panes
    /// (`hop < len` overlaps; `hop == len` degenerates to tumbling).
    /// Until `len` panes exist the emitted window is a partial prefix.
    Sliding {
        /// Window length in panes (≥ 1).
        len: u32,
        /// Panes between emissions (≥ 1).
        hop: u32,
    },
    /// The landmark window: every answer covers all panes since the
    /// stream's first measured epoch, emitted every pane. Maintained as
    /// a running accumulator — O(1) state and merge work per epoch, no
    /// pane ring at all.
    Landmark,
}

impl WindowSpec {
    /// A tumbling window of `len` panes.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn tumbling(len: u32) -> Self {
        assert!(len >= 1, "a window needs at least one pane");
        WindowSpec::Tumbling { len }
    }

    /// A sliding window of `len` panes emitted every `hop` panes.
    ///
    /// # Panics
    /// Panics if `len` or `hop` is zero, or if `hop > len` (that would
    /// silently drop panes from every window — use tumbling plus a
    /// longer length instead).
    pub fn sliding(len: u32, hop: u32) -> Self {
        assert!(len >= 1, "a window needs at least one pane");
        assert!(hop >= 1, "a hop advances by at least one pane");
        assert!(hop <= len, "hop {hop} > len {len} would drop panes");
        WindowSpec::Sliding { len, hop }
    }

    /// The landmark window.
    pub fn landmark() -> Self {
        WindowSpec::Landmark
    }

    /// Panes the shared ring must retain for this window (0 for the
    /// landmark window, which keeps a running accumulator instead).
    pub(crate) fn ring_need(&self) -> usize {
        match *self {
            WindowSpec::Tumbling { len } | WindowSpec::Sliding { len, .. } => len as usize,
            WindowSpec::Landmark => 0,
        }
    }

    /// Whether a window closes after pane `seq` (0-based sequence number
    /// in the measured-epoch pane series).
    pub(crate) fn emits_after(&self, seq: u64) -> bool {
        match *self {
            WindowSpec::Tumbling { len } => (seq + 1).is_multiple_of(len as u64),
            WindowSpec::Sliding { hop, .. } => (seq + 1).is_multiple_of(hop as u64),
            WindowSpec::Landmark => true,
        }
    }

    /// How many panes the window closing after pane `seq` merges.
    pub(crate) fn span_at(&self, seq: u64) -> usize {
        match *self {
            WindowSpec::Tumbling { len } => len as usize,
            WindowSpec::Sliding { len, .. } => (len as u64).min(seq + 1) as usize,
            WindowSpec::Landmark => (seq + 1) as usize,
        }
    }

    /// The full pane count of a complete window (`None` for landmark,
    /// which never completes).
    pub(crate) fn full_span(&self) -> Option<usize> {
        match *self {
            WindowSpec::Tumbling { len } | WindowSpec::Sliding { len, .. } => Some(len as usize),
            WindowSpec::Landmark => None,
        }
    }

    /// Display name, e.g. `tumbling(8)` / `sliding(8,2)` / `landmark`.
    pub fn name(&self) -> String {
        match *self {
            WindowSpec::Tumbling { len } => format!("tumbling({len})"),
            WindowSpec::Sliding { len, hop } => format!("sliding({len},{hop})"),
            WindowSpec::Landmark => "landmark".to_string(),
        }
    }
}

/// Which component of the pane algebra a window's answer evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochMerge {
    /// Sum of per-epoch answers — windowed totals of `Sum`/`Count`
    /// queries ("total readings over the last 10 epochs").
    Add,
    /// Minimum of per-epoch answers (windowed `Min`).
    Min,
    /// Maximum of per-epoch answers (windowed `Max`).
    Max,
    /// Mean of per-epoch answers — windowed rates, or the
    /// average-of-averages of an `Average` query.
    Mean,
}

impl EpochMerge {
    /// Display name for reports and CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            EpochMerge::Add => "add",
            EpochMerge::Min => "min",
            EpochMerge::Max => "max",
            EpochMerge::Mean => "mean",
        }
    }
}

/// The cross-epoch window partial: every component of the pane algebra,
/// merged field-wise. Merging is associative and commutative by
/// construction — each field is one scalar aggregate's tree-merge law
/// (exactly so for `min`/`max`/`count` and for integer-valued sums;
/// up to floating-point rounding for fractional multi-path estimates).
/// A single-pane partial evaluates bit-for-bit to its pane value under
/// every [`EpochMerge`], which is what pins `tumbling(1)` to the
/// per-epoch answers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PanePartial {
    /// Sum of pane values.
    pub sum: f64,
    /// Minimum pane value.
    pub min: f64,
    /// Maximum pane value.
    pub max: f64,
    /// Number of panes merged.
    pub count: u64,
}

impl PanePartial {
    /// The partial of a single pane.
    pub fn of(value: f64) -> Self {
        PanePartial {
            sum: value,
            min: value,
            max: value,
            count: 1,
        }
    }

    /// Field-wise merge (associative + commutative ⊎).
    pub fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Evaluate the window answer under `merge`.
    pub fn evaluate(&self, merge: EpochMerge) -> f64 {
        match merge {
            EpochMerge::Add => self.sum,
            EpochMerge::Min => self.min,
            EpochMerge::Max => self.max,
            EpochMerge::Mean => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use td_aggregates::laws::merge_all;
    use td_aggregates::minmax::{Max, Min};
    use td_aggregates::sum::Sum;
    use td_aggregates::traits::Aggregate;

    fn fold(values: &[f64]) -> PanePartial {
        let mut acc = PanePartial::of(values[0]);
        for &v in &values[1..] {
            acc.merge(&PanePartial::of(v));
        }
        acc
    }

    #[test]
    fn single_pane_evaluates_to_its_value_exactly() {
        for v in [0.0, -3.25, 1234.5678, 1e-12] {
            let p = PanePartial::of(v);
            for m in [
                EpochMerge::Add,
                EpochMerge::Min,
                EpochMerge::Max,
                EpochMerge::Mean,
            ] {
                assert_eq!(p.evaluate(m).to_bits(), v.to_bits(), "{m:?} on {v}");
            }
        }
    }

    #[test]
    fn spec_emission_schedule() {
        let t = WindowSpec::tumbling(3);
        let emits: Vec<bool> = (0..7).map(|s| t.emits_after(s)).collect();
        assert_eq!(emits, [false, false, true, false, false, true, false]);
        assert_eq!(t.span_at(2), 3);

        let s = WindowSpec::sliding(4, 2);
        let emits: Vec<bool> = (0..6).map(|q| s.emits_after(q)).collect();
        assert_eq!(emits, [false, true, false, true, false, true]);
        // Partial prefix until 4 panes exist.
        assert_eq!(s.span_at(1), 2);
        assert_eq!(s.span_at(3), 4);
        assert_eq!(s.span_at(5), 4);

        let l = WindowSpec::landmark();
        assert!(l.emits_after(0) && l.emits_after(9));
        assert_eq!(l.span_at(9), 10);
        assert_eq!(l.ring_need(), 0);
    }

    #[test]
    #[should_panic(expected = "would drop panes")]
    fn sliding_hop_beyond_len_rejected() {
        let _ = WindowSpec::sliding(2, 3);
    }

    // On integer-valued panes the Add/Min/Max components coincide with
    // the corresponding `td_aggregates` tree-merge laws — the window
    // algebra *is* the aggregate merge law lifted across epochs.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pane_merge_matches_aggregate_merge_laws(
            values in proptest::collection::vec(0u64..1_000_000, 1..24),
        ) {
            let readings: Vec<(u32, u64)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u32 + 1, v))
                .collect();
            let panes: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let acc = fold(&panes);

            let sum = Sum::default();
            let sum_partial = merge_all(&sum, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Add), sum.evaluate_tree(&sum_partial));
            let min_partial = merge_all(&Min, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Min), Min.evaluate_tree(&min_partial));
            let max_partial = merge_all(&Max, &readings).expect("non-empty");
            prop_assert_eq!(acc.evaluate(EpochMerge::Max), Max.evaluate_tree(&max_partial));
        }

        #[test]
        fn pane_merge_is_order_and_grouping_invariant(
            values in proptest::collection::vec(0u64..1_000_000, 2..24),
            split in 1usize..23,
            rotate in 0usize..23,
        ) {
            // Integer-valued panes: f64 addition is exact below 2^53, so
            // associativity/commutativity hold bit-for-bit — the same
            // precondition the aggregates' own merge laws rely on.
            let panes: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let forward = fold(&panes);

            let mut reversed: Vec<f64> = panes.clone();
            reversed.reverse();
            prop_assert_eq!(forward, fold(&reversed));

            let mut rotated = panes.clone();
            rotated.rotate_left(rotate % panes.len());
            prop_assert_eq!(forward, fold(&rotated));

            // Grouping: (prefix ⊎) ⊎ (suffix ⊎) = linear fold.
            let split = split % (panes.len() - 1) + 1;
            let mut grouped = fold(&panes[..split]);
            grouped.merge(&fold(&panes[split..]));
            prop_assert_eq!(forward, grouped);
        }
    }
}
