//! # td-stream — cross-epoch streaming windows over the session engine
//!
//! The paper's engine answers one aggregate per epoch; real deployments
//! ask *stream* questions — "sum over the last 10 epochs, updated every
//! epoch". This crate adds that layer without re-traversing history,
//! following the pane/slice architecture of multi-dimensional stream
//! aggregation (Henning & Hasselbring): **compute one partial per
//! epoch, merge partials per window.**
//!
//! * [`WindowSpec`] — tumbling, sliding-with-hop, and landmark windows
//!   over the measured-epoch pane sequence.
//! * [`StreamQuery`] — any existing [`Protocol`] (via
//!   [`EpochProtocolFactory`], or [`ScalarQuery`] for any `Aggregate`)
//!   plus the windows attached to its pane series. N windows over one
//!   query share **one** pane ring.
//! * [`StreamSession`] — owns a [`Driver`](tributary_delta::Driver)
//!   (and through it the `Session`), registers every query's protocol
//!   on one [`QuerySet`](tributary_delta::QuerySet) per epoch (N
//!   windowed queries, one topology traversal), maintains the pane
//!   rings with O(1) eviction, and emits [`WindowReport`]s.
//! * [`PanePartial`] / [`EpochMerge`] — the associative, commutative
//!   cross-epoch merge: the scalar aggregates' tree-merge laws lifted
//!   to per-epoch answers. [`PaneAlgebra`] generalizes the fold so
//!   panes can carry *set-valued* state too — [`FreqPane`] merges
//!   per-item count estimates for windowed frequent-items queries
//!   ([`FreqStreamQuery`]), and [`QuantilePane`] carries merged
//!   GK/q-digest summaries for windowed medians and p99s
//!   ([`QuantileStreamQuery`]), subtracting evicted panes exactly
//!   where the digest's invertible combine allows it.
//! * [`WindowAccum`] / [`FoldMode`] — per-window incremental
//!   accumulators (subtract-on-evict, two-stacks) making a window hop
//!   O(1) amortized regardless of window length, bit-for-bit equal to
//!   the from-scratch re-fold.
//!
//! Windows interoperate with loss and adaptation instead of hiding
//! them: every report carries the newest pane's [`CommStats`] and
//! coverage (full per-pane history on request), the window's mean/min
//! coverage, and the count of tributary/delta relabels that fired
//! between its panes. Completed panes are plain merged values, so a
//! mid-window relabel never invalidates history.
//!
//! [`Protocol`]: tributary_delta::Protocol
//! [`CommStats`]: td_netsim::stats::CommStats

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod freq;
pub mod quantile;
pub mod query;
pub mod session;
pub mod window;

pub use freq::FreqStreamQuery;
pub use quantile::{IntoQuantilePane, QuantileStreamQuery};
pub use query::{EpochProtocolFactory, PaneProtocol, ScalarQuery, StreamQuery, WindowCfg};
pub use session::{
    DeregisterError, PaneStats, StreamSession, StreamStats, WindowHandle, WindowReport,
};
pub use window::{
    AccumCounters, EpochMerge, FoldMode, FreqPane, PaneAlgebra, PaneInput, PaneKind, PanePartial,
    PaneValue, QuantilePane, TwoStacks, WindowAccum, WindowAnswer, WindowSpec,
};
