//! Windowed frequent-items queries: the §6 [`FreqProtocol`] as a
//! stream source producing *set-valued* panes.
//!
//! A [`FreqStreamQuery`] runs one epoch of the paper's frequent-items
//! machinery (Algorithm 1 with a precision gradient in the tributaries,
//! Algorithm 2 in the delta, the §6.3 conversion at the boundary) per
//! measured epoch and reduces its answer to a [`FreqPane`] — the
//! per-item count estimates plus the estimated total N̂. Windows merge
//! those panes by multiset union ([`EpochMerge::Add`] is the only legal
//! law), so a sliding window's report answers "which items were
//! frequent over the last W epochs" with the window-level threshold
//! `(s − ε)·N̂_window` ([`FreqPane::report`]) — the windowed
//! false-negative experiment beside Figure 9 rides exactly this.
//!
//! Per-epoch item bags are supplied as a table indexed by
//! `epoch % len`, so drifting workloads replay deterministic bag
//! cycles without the factory borrowing epoch-local state.
//!
//! [`EpochMerge::Add`]: crate::window::EpochMerge::Add

use td_frequent::items::ItemBag;
use td_frequent::multipath::MultipathConfig;
use td_quantiles::gradient::PrecisionGradient;
use td_sketches::counter::CounterFactory;
use tributary_delta::protocol::{FreqOutput, FreqProtocol};

use crate::query::EpochProtocolFactory;
use crate::window::{FreqPane, PaneKind, PaneValue};

/// A frequent-items stream source: one [`FreqProtocol`] instance per
/// measured epoch, over that epoch's per-node item bags.
///
/// The bag table holds one `Vec<ItemBag>` (indexed by node) per epoch
/// slot; epoch `e` uses slot `e % slots`, so a single-slot table
/// replays the same bags every epoch and a multi-slot table cycles —
/// enough to express the drifting item distributions the windowed
/// false-negative sweep needs, while the factory stays `'static`-clean.
pub struct FreqStreamQuery<F: CounterFactory, G> {
    mp_cfg: MultipathConfig<F>,
    gradient: G,
    support: f64,
    bags_by_epoch: Vec<Vec<ItemBag>>,
}

impl<F: CounterFactory, G: PrecisionGradient + Clone> FreqStreamQuery<F, G> {
    /// Build the source.
    ///
    /// # Panics
    /// Panics on an empty bag table — every epoch needs bags.
    pub fn new(
        mp_cfg: MultipathConfig<F>,
        gradient: G,
        support: f64,
        bags_by_epoch: Vec<Vec<ItemBag>>,
    ) -> Self {
        assert!(
            !bags_by_epoch.is_empty(),
            "a frequent-items stream needs at least one epoch of item bags"
        );
        FreqStreamQuery {
            mp_cfg,
            gradient,
            support,
            bags_by_epoch,
        }
    }

    /// The combined per-epoch error tolerance ε = ε_a + ε_b.
    pub fn total_eps(&self) -> f64 {
        self.gradient.final_eps() + self.mp_cfg.eps
    }

    /// The support threshold s.
    pub fn support(&self) -> f64 {
        self.support
    }
}

impl<F, G> EpochProtocolFactory for FreqStreamQuery<F, G>
where
    F: CounterFactory + Send + 'static,
    F::Counter: Send,
    G: PrecisionGradient + Clone + Send + 'static,
{
    type Output = FreqOutput;
    type Proto<'e> = FreqProtocol<'e, F, G>;

    fn make<'e>(&'e self, _readings: &'e [u64], epoch: u64) -> FreqProtocol<'e, F, G> {
        let slot = (epoch % self.bags_by_epoch.len() as u64) as usize;
        FreqProtocol::new(
            self.mp_cfg.clone(),
            self.gradient.clone(),
            self.support,
            &self.bags_by_epoch[slot],
        )
    }

    fn pane_of(&self, output: FreqOutput) -> PaneValue {
        PaneValue::Freq(std::sync::Arc::new(FreqPane::from_estimates(
            &output.estimates,
        )))
    }

    fn kind(&self) -> PaneKind {
        PaneKind::Freq
    }

    fn label(&self) -> String {
        format!("frequent(s={})", self.support)
    }
}
