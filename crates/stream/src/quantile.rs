//! Windowed quantile queries: the §6.1.4 `QuantileProtocol` as a
//! stream source producing summary-valued panes.
//!
//! A [`QuantileStreamQuery`] runs one epoch of precision-gradient
//! quantile aggregation (GK or q-digest summaries combining up the
//! tributaries, a duplicate-insensitive synopsis set through the delta)
//! per measured epoch and wraps the epoch's merged summary in a
//! [`QuantilePane`]. Windows merge panes with the same combine law the
//! tree uses, so a sliding window's [`WindowReport`] carries the
//! windowed median as its scalar `value` *and* the full merged summary
//! in its `quantile` field — ask it for p99s, ranks, or any other φ.
//!
//! Eviction follows the pane's family: q-digest panes subtract exactly
//! (node-wise invertible combine), GK panes refold — see
//! [`QuantilePane`] for the certificate details.
//!
//! [`WindowReport`]: crate::session::WindowReport

use td_quantiles::gradient::PrecisionGradient;
use td_quantiles::summary::QuantileSummary;
use td_quantiles::{GkSummary, QDigest};
use tributary_delta::protocol::{QuantileOutput, QuantileProtocol};

use crate::query::EpochProtocolFactory;
use crate::window::{PaneKind, PaneValue, QuantilePane};

/// Conversion from a concrete summary family into the stream layer's
/// pane enum. Sealed in practice: the two implementors are the two
/// families [`QuantilePane`] knows how to merge and evict.
pub trait IntoQuantilePane: QuantileSummary {
    /// Wrap this summary in its family's pane variant.
    fn into_pane(self) -> QuantilePane;
}

impl IntoQuantilePane for GkSummary {
    fn into_pane(self) -> QuantilePane {
        QuantilePane::Gk(self)
    }
}

impl IntoQuantilePane for QDigest {
    fn into_pane(self) -> QuantilePane {
        QuantilePane::Digest(self)
    }
}

/// A quantile stream source: one [`QuantileProtocol`] instance per
/// measured epoch, over that epoch's per-node readings (the same
/// readings scalar queries in the bundle see).
///
/// The `template` carries family configuration (e.g. the q-digest
/// domain width) and seeds each epoch's protocol; the `gradient`
/// allocates per-height error budgets down the tributaries.
pub struct QuantileStreamQuery<S, G> {
    template: S,
    gradient: G,
}

impl<S: IntoQuantilePane, G: PrecisionGradient + Clone> QuantileStreamQuery<S, G> {
    /// Build the source from an explicit summary template.
    pub fn new(template: S, gradient: G) -> Self {
        QuantileStreamQuery { template, gradient }
    }

    /// The final (root-level) rank-error tolerance ε of the gradient.
    pub fn total_eps(&self) -> f64 {
        self.gradient.final_eps()
    }
}

impl<G: PrecisionGradient + Clone> QuantileStreamQuery<GkSummary, G> {
    /// A Greenwald–Khanna windowed quantile source.
    pub fn gk(gradient: G) -> Self {
        QuantileStreamQuery::new(GkSummary::empty(), gradient)
    }
}

impl<G: PrecisionGradient + Clone> QuantileStreamQuery<QDigest, G> {
    /// A q-digest windowed quantile source over the domain `[0, 2^bits)`.
    pub fn qdigest(bits: u32, gradient: G) -> Self {
        QuantileStreamQuery::new(QDigest::empty(bits), gradient)
    }
}

impl<S, G> EpochProtocolFactory for QuantileStreamQuery<S, G>
where
    S: IntoQuantilePane,
    G: PrecisionGradient + Clone + Send + 'static,
{
    type Output = QuantileOutput<S>;
    type Proto<'e> = QuantileProtocol<'e, S, G>;

    fn make<'e>(&'e self, readings: &'e [u64], _epoch: u64) -> QuantileProtocol<'e, S, G> {
        QuantileProtocol::new(self.template.clone(), self.gradient.clone(), readings)
    }

    fn pane_of(&self, output: QuantileOutput<S>) -> PaneValue {
        PaneValue::Quantile(std::sync::Arc::new(output.summary.into_pane()))
    }

    fn kind(&self) -> PaneKind {
        PaneKind::Quantile
    }

    fn label(&self) -> String {
        format!(
            "quantile[{}](eps={})",
            self.template.kind_name(),
            self.total_eps()
        )
    }
}
