//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a calibrated wall-clock batch loop. No statistics
//! engine or plots, but the location estimate is robust: batch timings
//! pass through IQR outlier rejection ([`robust_estimate`]) so that
//! scheduler hiccups don't drown small (<5%) effects like epoch-plan
//! reuse or bitset pooling.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value barrier (best-effort without compiler intrinsics: reads
/// the value through a volatile-ish identity the optimizer must honor).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

/// Timing loop handed to `bench_function` closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    pub ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Measure `f` by running it enough times to be readable on a wall
    /// clock, reporting the IQR-filtered mean of `samples` batches
    /// ([`robust_estimate`]).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate the batch size to ~2 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 2 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = (0..self.samples.max(3))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        self.ns_per_iter = robust_estimate(&mut per_iter);
    }
}

/// The robust location estimate of a batch-timing sample: drop outliers
/// beyond the Tukey fences `[q1 − 1.5·IQR, q3 + 1.5·IQR]`, then average
/// the survivors.
///
/// A plain median at ~16 coarse batches quantizes to batch granularity
/// and jumps a whole batch step between runs; the mean of the IQR-kept
/// samples has far lower variance, which is what makes small (<5%)
/// wins — epoch-plan reuse, bitset pooling — visible without rerunning
/// by hand. Sorts `samples` in place. Fewer than 4 samples carry no
/// quartile information and are averaged directly.
pub fn robust_estimate(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "no timing samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    if samples.len() < 4 {
        return mean(samples);
    }
    let q1 = samples[samples.len() / 4];
    let q3 = samples[(3 * samples.len()) / 4];
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&x| (lo..=hi).contains(&x))
        .collect();
    // The quartiles themselves are always inside the fences, so `kept`
    // is never empty.
    mean(&kept)
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            samples: self.sample_size.min(16),
        };
        f(&mut b);
        println!("{name:<45} {:>12.0} ns/iter", b.ns_per_iter);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- {name}");
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group (prefixes its benches' names).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the number of timing samples (coarse here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        self.c.bench_function(&full, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(group, tiny);

    #[test]
    fn harness_runs() {
        group();
    }

    #[test]
    fn robust_estimate_rejects_outliers() {
        // A clean cluster at ~100 with two scheduler-hiccup spikes: the
        // estimate must stay with the cluster.
        let mut samples = vec![
            98.0, 99.0, 100.0, 100.0, 101.0, 102.0, 99.5, 100.5, 1000.0, 5000.0,
        ];
        let est = robust_estimate(&mut samples);
        assert!(
            (est - 100.0).abs() < 2.0,
            "estimate {est} dragged by outliers"
        );
        // Without outliers it is the plain mean.
        let mut clean = vec![10.0, 12.0, 14.0, 16.0];
        assert_eq!(robust_estimate(&mut clean), 13.0);
        // Tiny samples are averaged directly.
        let mut tiny = vec![5.0, 7.0];
        assert_eq!(robust_estimate(&mut tiny), 6.0);
    }

    #[test]
    fn robust_estimate_resolves_small_differences() {
        // Two populations 3% apart, each with one big outlier: the
        // filtered estimates must preserve the ordering and roughly the
        // gap — the "<5% wins stay visible" requirement.
        let mut slow: Vec<f64> = (0..15).map(|i| 103.0 + (i % 3) as f64 * 0.2).collect();
        slow.push(900.0);
        let mut fast: Vec<f64> = (0..15).map(|i| 100.0 + (i % 3) as f64 * 0.2).collect();
        fast.push(900.0);
        let s = robust_estimate(&mut slow);
        let f = robust_estimate(&mut fast);
        let win = s / f - 1.0;
        assert!(
            (0.02..0.04).contains(&win),
            "3% difference distorted to {win}"
        );
    }
}
