//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple calibrated wall-clock loop that prints
//! `name: median ns/iter` lines. No statistics engine, no plots; good
//! enough to keep the bench targets compiling and producing comparable
//! numbers offline.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value barrier (best-effort without compiler intrinsics: reads
/// the value through a volatile-ish identity the optimizer must honor).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

/// Timing loop handed to `bench_function` closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    pub ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Measure `f` by running it enough times to be readable on a
    /// wall clock, keeping the median of `samples` batches.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate the batch size to ~2 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 2 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = (0..self.samples.max(3))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            samples: self.sample_size.min(16),
        };
        f(&mut b);
        println!("{name:<45} {:>12.0} ns/iter", b.ns_per_iter);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- {name}");
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group (prefixes its benches' names).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the number of timing samples (coarse here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        self.c.bench_function(&full, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(group, tiny);

    #[test]
    fn harness_runs() {
        group();
    }
}
