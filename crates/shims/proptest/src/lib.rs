//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, range and [`any`] strategies, the
//! [`collection`] combinators (`vec`, `btree_map`), `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with its case index, and cases are generated deterministically from
//! the test name, so failures replay exactly.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies (deterministic per test name and case).
pub type TestRng = StdRng;

/// Build the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Run configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Generate one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Strategy for "any value of `T`" ([`any`]).
pub struct AnyStrategy<T>(core::marker::PhantomData<fn() -> T>);

/// The `any::<T>()` strategy: uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `BTreeMap`s with a target entry count in `size`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    }

    /// `btree_map(key, value, len_range)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            // Duplicate keys collapse, as in real proptest (the map may
            // come out smaller than `len`).
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; ) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed at case {case}: {message}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert inside a property body (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(any::<u64>(), 3..10)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10, "len {}", xs.len());
        }

        #[test]
        fn ranges_respected(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert_eq!(x, x);
        }

        #[test]
        fn btree_map_bounds(m in crate::collection::btree_map(0u64..50, 1u64..10, 1..20)) {
            prop_assert!(m.len() < 20);
            for (k, v) in &m {
                prop_assert!(*k < 50 && (1..10).contains(v));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = crate::collection::vec(crate::any::<u64>(), 0..100);
        let a = s.generate(&mut crate::case_rng("t", 3));
        let b = s.generate(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
