//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates registry, so this
//! workspace vendors the small slice of the rand 0.8 API it actually
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], [`distributions::Distribution`],
//! and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! statistically solid for simulation purposes, and fully deterministic
//! (the workspace's reproducibility tests only require that equal seeds
//! give equal streams, not any particular stream).

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8's `Rng: RngCore` extension trait).
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from raw bits (rand's `Standard`
/// distribution, flattened into a trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounding (Lemire): unbiased enough for
                // simulation at any span this workspace draws from.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, u16, u8, usize, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions samplable through an RNG (rand's `Distribution` trait).
pub mod distributions {
    use super::Rng;

    /// A source of values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Slice helpers (rand's `seq` module).
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng(seed: u64) -> rngs::StdRng {
        rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = rng(7);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(7);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = rng(8);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut r = rng(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = rng(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(5.0f64..6.0);
            assert!((5.0..6.0).contains(&v));
        }
        assert_eq!(r.gen_range(3u64..4), 3);
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = rng(3);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut r = rng(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let picked = *v.choose(&mut r).unwrap();
        assert!(v.contains(&picked));
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = rng(5);
        let v = draw(&mut r);
        assert!(v < 100);
    }
}
