//! End-to-end pins that telemetry is **inert**: metrics, events, and
//! phase profiling never touch the RNG stream or the result path.
//!
//! (a) For every scheme, a full scenario — raw session epochs, a
//!     windowed stream under churn (patch path engaged), and a service
//!     tenant drained through the runtime — produces bit-identical
//!     answers, instrumentation, adaptation trajectories, and window
//!     reports whether event recording is off, cranked to `Trace`, or
//!     switched off again mid-process.
//! (b) A fixed-seed run's digest is pinned to a constant that the
//!     default build **and** the `--no-default-features` build both
//!     assert — CI runs this file in both configurations, so a
//!     telemetry-enabled binary is proven bit-identical to one with
//!     telemetry compiled out entirely.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::{Driver, FixedReadings};
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::churn::ChurnSchedule;
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::service::{ServiceRuntime, Tenant, TenantPhase};
use td_suite::stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_suite::telemetry::{events, Level};

/// The event level filter is process-global, and both tests below
/// mutate it; cargo test runs them on parallel threads. Serializing
/// them keeps one test's `set_level(None)` from suppressing recording
/// during the other's Trace pass. (The digests themselves are immune —
/// telemetry is inert — so a poisoned lock can just be taken over.)
static FILTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn filter_guard() -> std::sync::MutexGuard<'static, ()> {
    FILTER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn build_net(seed: u64, sensors: usize) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(sensors, 14.0, 14.0, Position::new(7.0, 7.0), 2.6, &mut rng)
}

fn fnv(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(0x100_0000_01b3);
}

/// One determinism-relevant digest of a full scenario at `scheme`:
/// per-epoch session records, churn-streamed window reports, and a
/// service tenant's drained report stream, all folded bit-exactly.
fn scenario_digest(scheme: Scheme, net: &Network, loss: f64, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;

    // Raw session epochs (adaptation engaged).
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 23).collect();
    let mut rng = rng_from_seed(seed);
    let mut session = SessionBuilder::new(scheme)
        .adapt_every(3)
        .build(net, &mut rng);
    let model = Global::new(loss);
    for epoch in 0..10u64 {
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        fnv(&mut h, rec.output.to_bits());
        fnv(&mut h, rec.contributing as u64);
        fnv(&mut h, rec.delta_size as u64);
        for b in format!("{:?}", rec.action).bytes() {
            fnv(&mut h, b as u64);
        }
    }

    // Windowed stream under churn: plan patches interleave with epochs.
    let mut rng = rng_from_seed(seed ^ 0x57E9);
    let session = SessionBuilder::new(scheme)
        .adapt_every(4)
        .build(net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, 1));
    let _ = stream.register(
        StreamQuery::scalar(Sum::default())
            .window(WindowSpec::sliding(3, 1), EpochMerge::Add)
            .window(WindowSpec::tumbling(2), EpochMerge::Mean),
    );
    let workload = FixedReadings(vec![3; net.len()]);
    let schedule = ChurnSchedule::new(net.len(), 0.05, 3.0, seed ^ 0xC4A9);
    for _ in 0..10 {
        for r in stream.step_under_churn(&workload, &model, &schedule, &mut rng) {
            fnv(&mut h, r.handle.query as u64);
            fnv(&mut h, r.handle.window as u64);
            fnv(&mut h, r.start_epoch);
            fnv(&mut h, r.end_epoch);
            fnv(&mut h, r.answer.to_bits());
            fnv(&mut h, r.coverage.to_bits());
            fnv(&mut h, r.nodes_joined);
            fnv(&mut h, r.nodes_left);
            fnv(&mut h, r.relabels as u64);
        }
    }

    // Service layer: one tenant, submitted and drained to its pause.
    let epochs = 8u64;
    let mut rng = rng_from_seed(seed ^ 0xBEEF);
    let session = SessionBuilder::new(scheme).build(net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, 1));
    let _ = stream.register(
        StreamQuery::scalar(Sum::default()).window(WindowSpec::sliding(4, 1), EpochMerge::Add),
    );
    let runtime = ServiceRuntime::new(2);
    let handle = runtime.submit(
        Tenant::builder(stream, FixedReadings(vec![2; net.len()]), Global::new(loss))
            .seed(seed)
            .run_until(epochs)
            .outbox_capacity(8)
            .build(),
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        for r in handle.drain(16) {
            fnv(&mut h, r.report.answer.to_bits());
            fnv(&mut h, r.report.start_epoch);
            fnv(&mut h, r.report.end_epoch);
        }
        let st = handle.status();
        if st.epochs_driven >= epochs && st.phase == TenantPhase::Paused && st.queued_reports == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out draining the scenario tenant (status {st:?})"
        );
        std::thread::yield_now();
    }
    for r in handle.drain(usize::MAX) {
        fnv(&mut h, r.report.answer.to_bits());
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// (a) recording off vs `Trace` vs off again: bit-identical for
    /// every scheme, through the stream and service layers.
    #[test]
    fn recording_events_never_perturbs_results(
        seed in 0u64..1_000,
        loss_pct in 0u32..31,
    ) {
        let net = build_net(63_000 + seed, 60);
        let loss = loss_pct as f64 / 100.0;
        let _serial = filter_guard();
        events::set_echo(false);
        for scheme in Scheme::all() {
            events::set_level(None);
            let silent = scenario_digest(scheme, &net, loss, seed);
            events::set_level(Some(Level::Trace));
            let traced = scenario_digest(scheme, &net, loss, seed);
            events::set_level(None);
            let silent_again = scenario_digest(scheme, &net, loss, seed);
            prop_assert_eq!(silent, traced, "{}: Trace recording changed results", scheme.name());
            prop_assert_eq!(silent, silent_again, "{}: disabling left residue", scheme.name());
            if td_suite::telemetry::compiled() {
                prop_assert!(
                    !events::events().is_empty(),
                    "Trace run recorded nothing — the instrumentation went missing"
                );
            }
        }
    }
}

/// (b) the fixed-seed digest, asserted identical in the default build
/// and the `--no-default-features` build. If this constant moves in
/// only one of the two configurations, telemetry stopped being inert;
/// if it moves in both, an engine change shifted results and the pin
/// just needs re-stamping alongside it.
#[test]
fn fixed_seed_digest_matches_across_builds() {
    let _serial = filter_guard();
    events::set_echo(false);
    events::set_level(Some(Level::Debug));
    let net = build_net(77_700, 60);
    let digest = scenario_digest(Scheme::Td, &net, 0.15, 4242);
    events::set_level(None);
    assert_eq!(
        digest, PINNED_TD_DIGEST,
        "fixed-seed scenario digest moved (got {digest:#018x})"
    );
}

/// Stamped from the digest printed by a default-features run; see
/// [`fixed_seed_digest_matches_across_builds`]. Last re-stamped with
/// the incremental window accumulators: window *answers* stayed
/// bit-identical (pinned separately in `e2e_stream`), but the report's
/// mean-coverage statistic is now maintained by a running sum instead
/// of a per-emission re-sum, which reassociates that float addition.
const PINNED_TD_DIGEST: u64 = 0xf2b6_f116_5dfe_49d4;
