//! End-to-end pins for intra-epoch level-parallel execution:
//!
//! (a) **bit-identity** — for every scheme (TAG, SD, TD, TD-Coarse),
//!     running the same session at 1, 2, and 8 intra-epoch workers
//!     (with the small-network floor disabled so the parallel executor
//!     actually engages) produces bit-identical per-epoch answers,
//!     instrumentation, adaptation trajectory, communication
//!     accounting, and — because comm randomness is drawn on the
//!     calling thread in sequential order — an identical RNG stream
//!     afterwards;
//! (b) **under churn and plan patching** — the same holds through
//!     `StreamSession::step_under_churn`, where epochs interleave with
//!     structural churn patches and §4.2 relabels, window reports
//!     included;
//! (c) **through the service layer** — a tenant whose session asks for
//!     8 workers is pinned serial by `ServiceRuntime::submit` (the
//!     runtime's own worker pool is the parallelism) and its report
//!     stream still matches the serial single-worker reference exactly.

use proptest::prelude::*;
use rand::Rng;
use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::{Driver, FixedReadings};
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::churn::ChurnSchedule;
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::netsim::stats::CommStats;
use td_suite::service::{tenant_rng, ServiceRuntime, Tenant, TenantHandle, TenantPhase};
use td_suite::stream::{EpochMerge, StreamQuery, StreamSession, WindowReport, WindowSpec};

/// One epoch's determinism-relevant record: answer bits, contributing
/// count, delta size, adaptation action.
type EpochRecord = (u64, usize, usize, String);
/// Everything determinism-relevant about a window report, answer
/// bit-exact.
type Fingerprint = (usize, usize, u64, u64, u64, u64, u64, u64, u32);

fn build_net(seed: u64, sensors: usize) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(sensors, 14.0, 14.0, Position::new(7.0, 7.0), 2.6, &mut rng)
}

/// One full run at a given worker count: per-epoch `(answer bits,
/// contributing, delta size, adaptation action)`, the final comm
/// accounting, and one RNG draw taken *after* the run — equal draws mean
/// the parallel executor consumed exactly the sequential random stream.
fn history(
    scheme: Scheme,
    net: &Network,
    values: &[u64],
    loss: f64,
    workers: usize,
    seed: u64,
) -> (Vec<EpochRecord>, CommStats, u64) {
    let mut rng = rng_from_seed(seed);
    let mut session = SessionBuilder::new(scheme)
        .adapt_every(3)
        .workers(workers)
        .parallel_min_nodes(0)
        .build(net, &mut rng);
    let model = Global::new(loss);
    let mut outs = Vec::new();
    for epoch in 0..12u64 {
        let proto = ScalarProtocol::new(Sum::default(), values);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        outs.push((
            rec.output.to_bits(),
            rec.contributing,
            rec.delta_size,
            format!("{:?}", rec.action),
        ));
    }
    (outs, session.stats().clone(), rng.gen::<u64>())
}

fn fingerprint(r: &WindowReport) -> Fingerprint {
    (
        r.handle.query,
        r.handle.window,
        r.start_epoch,
        r.end_epoch,
        r.answer.to_bits(),
        r.coverage.to_bits(),
        r.nodes_joined,
        r.nodes_left,
        r.relabels,
    )
}

/// A windowed streaming run under churn at a given worker count.
fn stream_run(
    scheme: Scheme,
    net: &Network,
    loss: f64,
    workers: usize,
    seed: u64,
) -> Vec<Fingerprint> {
    let mut rng = rng_from_seed(seed ^ 0x57E9);
    let session = SessionBuilder::new(scheme)
        .adapt_every(4)
        .parallel_min_nodes(0)
        .build(net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, 1));
    stream.set_workers(workers);
    let _ = stream.register(
        StreamQuery::scalar(Sum::default())
            .window(WindowSpec::sliding(3, 1), EpochMerge::Add)
            .window(WindowSpec::tumbling(2), EpochMerge::Mean),
    );
    let workload = FixedReadings(vec![3; net.len()]);
    let model = Global::new(loss);
    let schedule = ChurnSchedule::new(net.len(), 0.05, 3.0, seed ^ 0xC4A9);
    let mut out = Vec::new();
    for _ in 0..14 {
        out.extend(
            stream
                .step_under_churn(&workload, &model, &schedule, &mut rng)
                .iter()
                .map(fingerprint),
        );
    }
    out
}

fn wait_drained(handle: &TenantHandle, target: u64) -> Vec<Fingerprint> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut out = Vec::new();
    loop {
        let got = handle.drain(16);
        let was_empty = got.is_empty();
        out.extend(got.into_iter().map(|t| fingerprint(&t.report)));
        if was_empty {
            let st = handle.status();
            if st.epochs_driven >= target
                && st.phase == TenantPhase::Paused
                && st.queued_reports == 0
            {
                return out;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out draining tenant to epoch {target} (status {st:?})"
            );
            std::thread::yield_now();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) every scheme × workers {1, 2, 8}: answers, stats, and the
    /// RNG stream are bit-identical, adaptation relabels included.
    #[test]
    fn every_scheme_is_bit_identical_across_worker_counts(
        seed in 0u64..1_000,
        loss_pct in 0u32..36,
        sensors in 60usize..120,
    ) {
        let net = build_net(41_000 + seed, sensors);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 23).collect();
        let loss = loss_pct as f64 / 100.0;
        for scheme in Scheme::all() {
            let baseline = history(scheme, &net, &values, loss, 1, 90 + seed);
            for workers in [2usize, 8] {
                let parallel = history(scheme, &net, &values, loss, workers, 90 + seed);
                prop_assert_eq!(
                    &baseline, &parallel,
                    "{} diverged at {} workers", scheme.name(), workers
                );
            }
        }
    }

    /// (b) streaming under churn: window reports are bit-identical
    /// across worker counts while plans patch for churn and relabels.
    #[test]
    fn windowed_churn_streams_are_bit_identical_across_worker_counts(
        seed in 0u64..1_000,
        loss_pct in 0u32..31,
    ) {
        let net = build_net(52_000 + seed, 80);
        let loss = loss_pct as f64 / 100.0;
        for scheme in [Scheme::Tag, Scheme::Td, Scheme::TdCoarse] {
            let baseline = stream_run(scheme, &net, loss, 1, seed);
            for workers in [2usize, 8] {
                let parallel = stream_run(scheme, &net, loss, workers, seed);
                prop_assert_eq!(
                    &baseline, &parallel,
                    "{} stream diverged at {} workers", scheme.name(), workers
                );
            }
        }
    }
}

/// (c) the service layer pins tenants serial: a tenant built from a
/// session that asked for 8 intra-epoch workers produces exactly the
/// serial reference's reports (the pin is pure scheduling — results
/// would be bit-identical either way, which is what makes it safe).
#[test]
fn service_tenants_asking_for_workers_match_the_serial_reference() {
    let seed = 0xD17A;
    let net = build_net(seed, 50);
    let epochs = 12u64;
    let loss = 0.1;

    let make_stream = |workers: usize| {
        let mut rng = rng_from_seed(seed ^ 0xCAFE);
        let session = SessionBuilder::new(Scheme::Td)
            .workers(workers)
            .parallel_min_nodes(0)
            .build(&net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, 1));
        let _ = stream.register(
            StreamQuery::scalar(Sum::default()).window(WindowSpec::sliding(4, 1), EpochMerge::Add),
        );
        stream
    };

    // Serial reference: explicitly one worker, stepped by hand.
    let mut serial = make_stream(1);
    let workload = FixedReadings(vec![2; net.len()]);
    let model = Global::new(loss);
    let mut rng = tenant_rng(seed);
    let mut reference = Vec::new();
    for _ in 0..epochs {
        reference.extend(
            serial
                .step(&workload, &model, &mut rng)
                .iter()
                .map(fingerprint),
        );
    }

    // Service run: the tenant's session asks for 8 workers; submit
    // pins it back to serial-per-tenant.
    let runtime = ServiceRuntime::new(2);
    let handle = runtime.submit(
        Tenant::builder(
            make_stream(8),
            FixedReadings(vec![2; net.len()]),
            Global::new(loss),
        )
        .seed(seed)
        .run_until(epochs)
        .outbox_capacity(8)
        .build(),
    );
    let drained = wait_drained(&handle, epochs);
    assert_eq!(reference, drained);
}
