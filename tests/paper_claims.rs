//! Executable versions of the paper's headline claims, at reduced scale —
//! the "does this reproduction actually reproduce" test file. The full-
//! scale numbers live in EXPERIMENTS.md; these tests pin the *shape*.

use td_suite::frequent::items::ItemBag;
use td_suite::frequent::tree::{run_tree, GradientKind, TreeFrequentConfig};
use td_suite::netsim::loss::NoLoss;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::quantiles::gradient::{MinTotalLoad, PrecisionGradient};
use td_suite::topology::bushy::{build_bushy_tree, BushyOptions};
use td_suite::topology::domination::{domination_factor, DominationProfile};
use td_suite::topology::rings::Rings;
use td_suite::topology::tree::{build_tag_tree, ParentSelection};

/// §1/Figure 2: there is a crossover — the tree wins at zero loss, the
/// multi-path approach wins at realistic loss. (The end-to-end scheme
/// comparison lives in tests/e2e_scalar.rs; here we pin the *existence*
/// of the crossover via the session machinery at two loss points.)
#[test]
fn crossover_exists() {
    use td_suite::aggregates::sum::Sum;
    use td_suite::core::protocol::ScalarProtocol;
    use td_suite::core::session::{Scheme, Session};
    use td_suite::netsim::loss::Global;

    let mut rng = rng_from_seed(41);
    let net = Network::random_connected(150, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 30 + i % 40).collect();
    let truth: f64 = values[1..].iter().sum::<u64>() as f64;

    let mean_err = |scheme: Scheme, p: f64| -> f64 {
        let mut rng = rng_from_seed(42);
        let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
        let mut err = 0.0;
        let epochs = 30;
        for epoch in 0..epochs {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let out = session.run_epoch(&proto, &Global::new(p), epoch, &mut rng);
            err += (out.output - truth).abs() / truth;
        }
        err / epochs as f64
    };
    // Zero loss: tree exact, multi-path pays its sketch error.
    assert!(mean_err(Scheme::Tag, 0.0) < 1e-9);
    assert!(mean_err(Scheme::Sd, 0.0) > 0.01);
    // Realistic loss: tree collapses past the multi-path error.
    assert!(
        mean_err(Scheme::Tag, 0.3) > mean_err(Scheme::Sd, 0.3),
        "no crossover at p=0.3"
    );
}

/// §6.1.3/Figure 7: the bushy construction beats the standard TAG tree's
/// domination factor on average.
#[test]
fn bushy_construction_lifts_domination_factor() {
    let mut tag_sum = 0.0;
    let mut ours_sum = 0.0;
    let trials = 6;
    for seed in 0..trials {
        let mut rng = rng_from_seed(50 + seed);
        let net =
            Network::random_connected(200, 14.0, 14.0, Position::new(7.0, 7.0), 2.5, &mut rng);
        let tag = build_tag_tree(&net, ParentSelection::Random, None, true, &mut rng);
        let rings = Rings::build(&net);
        let ours = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        tag_sum += domination_factor(&tag, 0.05);
        ours_sum += domination_factor(&ours, 0.05);
    }
    assert!(
        ours_sum > tag_sum + 0.5 * trials as f64 * 0.2,
        "our {} vs tag {}",
        ours_sum / trials as f64,
        tag_sum / trials as f64
    );
}

/// Lemma 2: a tree where each internal node of height i has ≥ d children
/// of height i−1 is d-dominating (checked over synthetic profiles).
#[test]
fn lemma2_regular_profiles_dominate() {
    for d in 2..=5usize {
        let counts: Vec<usize> = (0..5).map(|i| d.pow((4 - i) as u32)).collect();
        let profile = DominationProfile::from_height_counts(counts);
        assert!(profile.is_d_dominating(d as f64), "d = {d}");
    }
}

/// Lemma 3: Min Total-load's measured total communication respects the
/// closed-form bound `(1 + 2/(√d−1))·m/ε` on real deployments.
#[test]
fn lemma3_bound_holds_on_deployments() {
    for seed in [61u64, 62] {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(120, 11.0, 11.0, Position::new(5.5, 5.5), 2.5, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        use rand::Rng;
        let mut bags = vec![ItemBag::new(); net.len()];
        for u in net.sensor_ids() {
            for _ in 0..120 {
                bags[u.index()].add(rng.gen_range(0u64..4000), 1);
            }
        }
        let eps = 0.02;
        let res = run_tree(
            &net,
            &tree,
            &TreeFrequentConfig::new(eps),
            &bags,
            &NoLoss,
            0,
            &mut rng,
        );
        let d = res.domination_factor.max(1.1);
        let bound = (1.0 + 2.0 / (d.sqrt() - 1.0)) * net.len() as f64 / eps;
        assert!(
            (res.stats.total_words() as f64) <= bound,
            "seed {seed}: total {} > bound {bound}",
            res.stats.total_words()
        );
    }
}

/// §6.1: the Min Total-load gradient's formulas — ε(i) = ε(1−t^i) with
/// t = 1/√d — are monotone, bounded by ε, and their differences shrink
/// geometrically (the "large differences at small heights" intuition).
#[test]
fn min_total_load_gradient_shape() {
    let g = MinTotalLoad::new(0.01, 2.25);
    let mut prev = 0.0;
    for i in 1..=12 {
        let e = g.eps_at(i);
        assert!(e > prev && e <= 0.01 + 1e-12);
        prev = e;
    }
    assert!(g.diff_at(1) > g.diff_at(2) && g.diff_at(2) > g.diff_at(3));
}

/// Figure 8's ordering on all-tail streams: MTL < MML on total load, both
/// far below the GK baseline.
#[test]
fn frequent_items_load_ordering() {
    let mut rng = rng_from_seed(71);
    let net = Network::random_connected(80, 9.0, 9.0, Position::new(4.5, 4.5), 2.5, &mut rng);
    let rings = Rings::build(&net);
    let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    // Disjoint uniform streams, ~Poisson(1) counts: the §7.4.2 stress.
    use rand::Rng;
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        let base = u.0 as u64 * 4000;
        for _ in 0..3000 {
            bags[u.index()].add(base + rng.gen_range(0u64..3000), 1);
        }
    }
    let eps = 0.001;
    let load = |kind: GradientKind| {
        let mut rng = rng_from_seed(72);
        run_tree(
            &net,
            &tree,
            &TreeFrequentConfig::new(eps).with_gradient(kind),
            &bags,
            &NoLoss,
            0,
            &mut rng,
        )
        .stats
        .total_words()
    };
    let mtl = load(GradientKind::MinTotalLoad);
    let mml = load(GradientKind::MinMaxLoad);
    assert!(mtl < mml, "MTL {mtl} !< MML {mml}");
    // The paper's synthetic-data claim: roughly half (accept < 0.8).
    assert!(
        (mtl as f64) < 0.8 * mml as f64,
        "MTL {mtl} not clearly below MML {mml}"
    );
}

/// §7.4.2 (footnote 5): "frequent items can be computed from quantiles."
/// The quantiles-derived report (GK rank differences) and td-frequent's
/// direct ε-deficient report must AGREE within their combined error
/// bounds on the same tree and item streams: every comfortably-frequent
/// item is in both reports, every comfortably-infrequent item is in
/// neither, and any item the two routes dispute has a true count inside
/// the (s ± ε_combined)·N band.
#[test]
fn quantile_derived_frequent_items_agree_with_direct_route() {
    use rand::Rng;
    use td_suite::frequent::items::count_items;
    use td_suite::frequent::quantile_based::{run_tree_gk, QuantileBasedConfig};

    let mut rng = rng_from_seed(742);
    let net = Network::random_connected(60, 18.0, 18.0, Position::new(9.0, 9.0), 4.5, &mut rng);
    let rings = Rings::build(&net);
    let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    // A few genuinely heavy items over a long uniform tail.
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        for _ in 0..200 {
            let roll = rng.gen_range(0u32..100);
            if roll < 12 {
                bags[u.index()].add(3, 1);
            } else if roll < 20 {
                bags[u.index()].add(7, 1);
            } else if roll < 24 {
                bags[u.index()].add(11, 1); // borderline at s = 0.05
            } else {
                bags[u.index()].add(rng.gen_range(100u64..5000), 1);
            }
        }
    }
    let (s, eps) = (0.05, 0.01);

    let mut rng = rng_from_seed(743);
    let quant = run_tree_gk(
        &net,
        &tree,
        &QuantileBasedConfig::new(eps),
        &bags,
        &NoLoss,
        0,
        &mut rng,
    );
    let mut rng = rng_from_seed(743);
    let direct = run_tree(
        &net,
        &tree,
        &TreeFrequentConfig::new(eps),
        &bags,
        &NoLoss,
        0,
        &mut rng,
    );

    let truth = count_items(&bags);
    let n = truth.total() as f64;
    assert_eq!(quant.summary.population(), truth.total());
    let from_quantiles = quant.report_frequent(s, eps);
    let from_direct = direct.summary.report_frequent(s);

    // Each route over-reports by at most its own ε below s·N, so the
    // two reports can only disagree inside the combined band.
    let band = 2.0 * eps * n;
    let mut comfortably_frequent = 0;
    for (item, count) in truth.iter() {
        let c = count as f64;
        if c > s * n + band {
            assert!(
                from_quantiles.contains(&item) && from_direct.contains(&item),
                "item {item} (count {count}) missed by a route"
            );
            comfortably_frequent += 1;
        } else if c < s * n - band {
            assert!(
                !from_quantiles.contains(&item) && !from_direct.contains(&item),
                "item {item} (count {count}) over-reported by a route"
            );
        }
    }
    assert!(comfortably_frequent >= 2, "stress lost its heavy items");
    for item in from_quantiles
        .iter()
        .filter(|u| !from_direct.contains(u))
        .chain(from_direct.iter().filter(|u| !from_quantiles.contains(u)))
    {
        let c = truth.count(*item) as f64;
        assert!(
            (c - s * n).abs() <= band,
            "disputed item {item} (count {c}) outside the combined error band"
        );
    }
}
