//! Tier-1 guarantees of the correlated-failure subsystem:
//!
//! * **Reduction**: a Gilbert–Elliott channel whose Good and Bad states
//!   drop at the same rate is *bit-identical* to the memoryless
//!   `Global` model across seeds and schemes — the burst machinery
//!   draws from its own substream and never perturbs the delivery RNG.
//! * **Structural patching**: a churn event (orphans re-parented,
//!   rejoiners re-attached) patches the compiled epoch plan in place to
//!   a state structurally identical to a fresh compile, and executes
//!   epochs bit-for-bit identically — including interleaved with §4.2
//!   adaptation relabels.
//! * **Acceptance**: a small churn event flows through
//!   `EpochPlan::patch` (counted in `PlanCacheStats`), never a full
//!   rebuild, and churn-afflicted sessions are indistinguishable
//!   (answers, adaptation trajectory, accounting) from sessions that
//!   recompile or rebuild every epoch — under all four schemes.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::query::QuerySet;
use td_suite::core::runner::{EpochPlan, RunnerConfig};
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::churn::{ChurnEvents, ChurnSchedule};
use td_suite::netsim::loss::{GilbertElliott, Global};
use td_suite::netsim::network::Network;
use td_suite::netsim::node::{NodeId, Position};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::netsim::stats::CommStats;
use td_suite::topology::bushy::{build_bushy_tree, BushyOptions};
use td_suite::topology::maintenance::apply_churn;
use td_suite::topology::rings::Rings;
use td_suite::topology::td::TdTopology;

fn build_net(seed: u64, sensors: usize) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(sensors, 16.0, 16.0, Position::new(8.0, 8.0), 2.8, &mut rng)
}

fn build_topo(seed: u64, sensors: usize, delta_levels: u16) -> (Network, TdTopology) {
    let net = build_net(seed, sensors);
    let mut rng = rng_from_seed(seed ^ 0xF00D);
    let rings = Rings::build(&net);
    let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    let delta_levels = delta_levels.min(rings.max_level());
    let td = TdTopology::new(rings, tree, delta_levels);
    (net, td)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite: `GilbertElliott` with equal Good/Bad drop rates is
    /// bit-identical to `Bernoulli` (`Global`) across seeds and all
    /// four schemes — answers, instrumentation, adaptation trajectory,
    /// and communication accounting.
    #[test]
    fn equal_rate_gilbert_elliott_is_bernoulli_under_every_scheme(
        seed in 0u64..1_000,
        loss_pct in 0u32..41,
        burst_seed in any::<u64>(),
    ) {
        let net = build_net(7000 + seed, 140);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 19).collect();
        let p = loss_pct as f64 / 100.0;
        let epochs = 15u64;
        for scheme in Scheme::all() {
            let run = |use_ge: bool| {
                let mut rng = rng_from_seed(30 + seed);
                let mut session = SessionBuilder::new(scheme)
                    .adapt_every(4)
                    .build(&net, &mut rng);
                let mut outs = Vec::new();
                for epoch in 0..epochs {
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    let rec = if use_ge {
                        let ge = GilbertElliott::new(p, p, 0.2, 0.3, burst_seed);
                        session.run_epoch(&proto, &ge, epoch, &mut rng)
                    } else {
                        session.run_epoch(&proto, &Global::new(p), epoch, &mut rng)
                    };
                    outs.push((rec.output, rec.contributing, rec.delta_size, rec.action));
                }
                (outs, session.stats().clone())
            };
            let (ge, ge_stats) = run(true);
            let (bern, bern_stats) = run(false);
            prop_assert_eq!(&ge, &bern, "{} diverged from Bernoulli", scheme.name());
            prop_assert_eq!(&ge_stats, &bern_stats);
        }
    }

    /// Satellite + tentpole: after every churn event (interleaved with
    /// §4.2 relabels), the patched plan's structural digest equals a
    /// fresh compile's, and one lossy epoch over each is bit-identical.
    #[test]
    fn churn_patched_plan_digest_equals_fresh_compile(
        seed in 0u64..1_000,
        delta_levels in 0u16..4,
        leave_pct in 1u32..9,
        epochs in 4u64..16,
    ) {
        let (net, mut td) = build_topo(8000 + seed, 140, delta_levels);
        let schedule = ChurnSchedule::new(
            net.len(),
            leave_pct as f64 / 100.0,
            6.0,
            seed ^ 0xC4,
        );
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 31).collect();
        let model = Global::new(0.2);
        let mut plan = EpochPlan::compile_td(&td);

        for epoch in 0..epochs {
            let events = schedule.events_at(epoch);
            apply_churn(&mut td, &events.left, &events.joined, &events.absent);
            // Interleave an occasional whole-level relabel so label and
            // structural deltas patch through together.
            if epoch % 3 == 2 {
                td.expand_all();
            }
            prop_assert!(td.validate().is_ok());
            prop_assert!(
                plan.patch(&td, td.len()).is_some(),
                "patch refused at epoch {epoch}"
            );
            let mut fresh = EpochPlan::compile_td(&td);
            prop_assert_eq!(
                plan.structural_digest(),
                fresh.structural_digest(),
                "digest diverged at epoch {}", epoch
            );

            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let mut stats_a = CommStats::new(net.len());
            let mut stats_b = CommStats::new(net.len());
            let mut rng_a = rng_from_seed(99 ^ seed.wrapping_add(epoch));
            let mut rng_b = rng_from_seed(99 ^ seed.wrapping_add(epoch));
            let churn_model = schedule.overlay(&model);
            let a = plan.run_set(
                &set, &net, &churn_model, RunnerConfig::default(),
                epoch, &mut stats_a, &mut rng_a,
            );
            let b = fresh.run_set(
                &set, &net, &churn_model, RunnerConfig::default(),
                epoch, &mut stats_b, &mut rng_b,
            );
            prop_assert_eq!(
                a.outputs[0].downcast_ref::<f64>(),
                b.outputs[0].downcast_ref::<f64>()
            );
            prop_assert_eq!(a.contributing, b.contributing);
            prop_assert_eq!(a.contributing_est, b.contributing_est);
            prop_assert_eq!(stats_a, stats_b);
        }
    }

    /// Acceptance: churn-afflicted sessions under every scheme are
    /// bit-identical whether the plan cache patches (default),
    /// recompiles on every topology change (`patch_relabel_fraction
    /// 0`), or is rebuilt from scratch every epoch — and the ring-based
    /// schemes absorb churn by patching.
    #[test]
    fn churn_sessions_match_recompiling_and_rebuilt_sessions(
        seed in 0u64..1_000,
        loss_pct in 0u32..30,
    ) {
        let net = build_net(9000 + seed, 160);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 23).collect();
        let model = Global::new(loss_pct as f64 / 100.0);
        let schedule = ChurnSchedule::new(net.len(), 0.01, 8.0, seed ^ 0xABC);
        let epochs = 30u64;
        for scheme in Scheme::all() {
            let run = |patch_fraction: f64, clear_every_epoch: bool| {
                let mut rng = rng_from_seed(50 + seed);
                let mut session = SessionBuilder::new(scheme)
                    .adapt_every(5)
                    .patch_relabel_fraction(patch_fraction)
                    .build(&net, &mut rng);
                let mut outs = Vec::new();
                for epoch in 0..epochs {
                    session.apply_churn(&schedule.events_at(epoch));
                    if clear_every_epoch {
                        session.clear_cached_plan();
                    }
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    let rec = session.run_epoch(
                        &proto, &schedule.overlay(&model), epoch, &mut rng,
                    );
                    outs.push((rec.output, rec.contributing, rec.delta_size, rec.action));
                }
                (outs, session.stats().clone(), session.plan_stats())
            };
            let (patched, patched_stats, plan) = run(1.0, false);
            let (recompiled, recompiled_stats, recompiled_plan) = run(0.0, false);
            let (rebuilt, rebuilt_stats, _) = run(1.0, true);
            prop_assert_eq!(&patched, &recompiled, "patch vs recompile ({})", scheme.name());
            prop_assert_eq!(&patched, &rebuilt, "patch vs rebuild ({})", scheme.name());
            prop_assert_eq!(&patched_stats, &recompiled_stats);
            prop_assert_eq!(&patched_stats, &rebuilt_stats);
            prop_assert!(patched_stats.nodes_left() > 0, "churn never fired");
            if scheme != Scheme::Tag {
                // Ring-based schemes absorb churn (and adaptation) with
                // one initial compile plus in-place patches.
                prop_assert_eq!(plan.compiles, 1, "{} recompiled: {:?}", scheme.name(), plan);
                prop_assert!(plan.patches > 0, "{} never patched", scheme.name());
                prop_assert_eq!(recompiled_plan.patches, 0);
            }
        }
    }
}

/// The acceptance criterion, isolated: ONE small churn event (well
/// under `patch_relabel_fraction` of the network) reaches the next
/// epoch as exactly one `EpochPlan::patch` — never a recompile — under
/// every ring-based scheme, bit-identical to the rebuilt session.
#[test]
fn one_small_churn_event_is_one_patch() {
    let net = build_net(4242, 220);
    let values: Vec<u64> = vec![1; net.len()];
    for scheme in [Scheme::Sd, Scheme::TdCoarse, Scheme::Td] {
        let mut rng = rng_from_seed(77);
        // A generous threshold keeps adaptation idle, isolating churn.
        let mut session = SessionBuilder::new(scheme)
            .threshold(0.5)
            .build(&net, &mut rng);
        // Pick a departing node whose orphans have surviving receivers.
        let topo = session.topology().expect("ring-based scheme");
        let compatible = |c: NodeId, r: NodeId| {
            use td_suite::topology::td::Mode;
            topo.mode(c) == Mode::T || topo.mode(r) == Mode::M
        };
        let leaver = topo
            .rings()
            .connected_nodes()
            .find(|&u| {
                !u.is_base()
                    && topo.tree().children(u).iter().any(|&c| {
                        topo.rings()
                            .receivers(c)
                            .iter()
                            .any(|&r| r != u && compatible(c, r))
                    })
            })
            .expect("a reroutable parent exists");

        for epoch in 0..5u64 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            session.run_epoch(&proto, &Global::new(0.05), epoch, &mut rng);
        }
        let before = session.plan_stats();
        let report = session.apply_churn(&ChurnEvents {
            epoch: 5,
            joined: Vec::new(),
            left: vec![leaver],
            absent: vec![leaver],
        });
        assert!(
            report.reparented > 0,
            "{}: nothing re-routed around {leaver}",
            scheme.name()
        );
        let proto = ScalarProtocol::new(Sum::default(), &values);
        session.run_epoch(&proto, &Global::new(0.05), 5, &mut rng);
        let after = session.plan_stats();
        assert_eq!(
            after.compiles,
            before.compiles,
            "{}: the churn event forced a rebuild",
            scheme.name()
        );
        assert_eq!(
            after.patches,
            before.patches + 1,
            "{}: the churn event did not flow through EpochPlan::patch",
            scheme.name()
        );
        assert_eq!(session.stats().nodes_left(), 1);
    }
}

/// Burst loss really is a different failure axis even at the same
/// per-transmission loss rate: a bad sender loses *all* its
/// transmissions for whole epochs, so (a) the coverage series is
/// strongly **autocorrelated** where the memoryless channel's is not,
/// and (b) coverage is strictly worse — receiver-side multi-path
/// redundancy cannot recover a reading whose every copy left the same
/// silenced radio. This is the robustness gap i.i.d. sweeps cannot
/// expose.
#[test]
fn bursts_cluster_failures_at_matched_average_rate() {
    let net = build_net(515, 200);
    let values: Vec<u64> = vec![1; net.len()];
    let epochs = 240u64;
    let coverage_series = |bursty: bool| -> Vec<f64> {
        let mut rng = rng_from_seed(516);
        // SD: no adaptation, so the channel alone shapes coverage.
        let mut session = SessionBuilder::new(Scheme::Sd).build(&net, &mut rng);
        let ge = GilbertElliott::bursty(0.25, 12.0, 0.95, 9);
        let global = Global::new(0.25);
        (0..epochs)
            .map(|epoch| {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                let rec = if bursty {
                    session.run_epoch(&proto, &ge, epoch, &mut rng)
                } else {
                    session.run_epoch(&proto, &global, epoch, &mut rng)
                };
                rec.pct_contributing
            })
            .collect()
    };
    let stats = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        // Lag-1 autocorrelation: ~0 for a memoryless channel, strongly
        // positive when per-sender states persist across epochs.
        let cov = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        (mean, cov / var.max(1e-12))
    };
    let (burst_mean, burst_ac) = stats(&coverage_series(true));
    let (iid_mean, iid_ac) = stats(&coverage_series(false));
    assert!(
        burst_mean < iid_mean - 0.03,
        "bursts were not harder than iid loss: {burst_mean} vs {iid_mean}"
    );
    assert!(
        burst_ac > iid_ac + 0.25,
        "bursts left no temporal correlation: ac {burst_ac} vs {iid_ac}"
    );
}
