//! Tier-1 guarantees of incremental epoch-plan patching: a plan patched
//! through any sequence of §4.2 adaptation mutations (single switches,
//! subtree expansions, whole-level TD-Coarse moves) must be
//! **structurally identical** to a plan compiled fresh from the mutated
//! topology — same schedule, same receiver table, same arena layout —
//! and must execute epochs **bit-for-bit identically**; and a session
//! whose cache patches must be indistinguishable (answers, adaptation
//! trajectory, communication accounting) from one that recompiles every
//! epoch, under all four schemes.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::query::QuerySet;
use td_suite::core::runner::{EpochPlan, RunnerConfig};
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::netsim::stats::CommStats;
use td_suite::topology::bushy::{build_bushy_tree, BushyOptions};
use td_suite::topology::rings::Rings;
use td_suite::topology::td::TdTopology;

fn build_topo(seed: u64, sensors: usize, delta_levels: u16) -> (Network, TdTopology) {
    let mut rng = rng_from_seed(seed);
    let net =
        Network::random_connected(sensors, 16.0, 16.0, Position::new(8.0, 8.0), 2.8, &mut rng);
    let rings = Rings::build(&net);
    let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    let delta_levels = delta_levels.min(rings.max_level());
    let td = TdTopology::new(rings, tree, delta_levels);
    (net, td)
}

/// Apply one random legal mutation drawn from the §4.2 move set.
/// Returns whether anything switched.
fn random_mutation(td: &mut TdTopology, op: u8, pick: usize) -> bool {
    match op % 5 {
        0 => td.expand_all() > 0,
        1 => td.shrink_all() > 0,
        2 => {
            let roots = td.switchable_m_nodes();
            if roots.is_empty() {
                return false;
            }
            let root = roots[pick % roots.len()];
            td.expand_subtree(root).map(|n| n > 0).unwrap_or(false)
        }
        3 => {
            let ts = td.switchable_t_nodes();
            if ts.is_empty() {
                return false;
            }
            td.switch_to_m(ts[pick % ts.len()]).is_ok()
        }
        _ => {
            let ms = td.switchable_m_nodes();
            if ms.is_empty() {
                return false;
            }
            td.switch_to_t(ms[pick % ms.len()]).is_ok()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random expand/shrink/expand_all sequences: after every mutation,
    /// the patched plan's structural digest equals a fresh compile's,
    /// and one lossy epoch over each produces bit-identical answers,
    /// instrumentation, and communication accounting.
    #[test]
    fn patched_plan_matches_fresh_compile_under_random_mutations(
        seed in 0u64..1_000,
        delta_levels in 0u16..4,
        ops in proptest::collection::vec(any::<u8>(), 1..24),
        pick in any::<usize>(),
    ) {
        let (net, mut td) = build_topo(5000 + seed, 140, delta_levels);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 37).collect();
        let model = Global::new(0.2);
        let mut plan = EpochPlan::compile_td(&td);

        for (i, &op) in ops.iter().enumerate() {
            let switched = random_mutation(&mut td, op, pick.wrapping_add(i));
            prop_assert!(td.validate().is_ok());
            // Patch unconditionally (a no-op when nothing switched).
            prop_assert!(plan.patch(&td, td.len()).is_some(), "patch refused after op {i}");
            let fresh = EpochPlan::compile_td(&td);
            prop_assert_eq!(
                plan.structural_digest(),
                fresh.structural_digest(),
                "digest diverged after op {} (switched={})", i, switched
            );

            // Bit-identical execution over the patched vs fresh plan.
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let mut fresh = fresh;
            let mut stats_a = CommStats::new(net.len());
            let mut stats_b = CommStats::new(net.len());
            let mut rng_a = rng_from_seed(777 ^ seed.wrapping_add(i as u64));
            let mut rng_b = rng_from_seed(777 ^ seed.wrapping_add(i as u64));
            let a = plan.run_set(
                &set, &net, &model, RunnerConfig::default(),
                i as u64, &mut stats_a, &mut rng_a,
            );
            let b = fresh.run_set(
                &set, &net, &model, RunnerConfig::default(),
                i as u64, &mut stats_b, &mut rng_b,
            );
            prop_assert_eq!(
                a.outputs[0].downcast_ref::<f64>(),
                b.outputs[0].downcast_ref::<f64>()
            );
            prop_assert_eq!(a.contributing, b.contributing);
            prop_assert_eq!(a.contributing_est, b.contributing_est);
            prop_assert_eq!(&a.max_noncontrib, &b.max_noncontrib);
            prop_assert_eq!(&a.min_noncontrib, &b.min_noncontrib);
            prop_assert_eq!(stats_a, stats_b);
        }
    }

    /// Session-level equivalence under every scheme: a session whose
    /// plan cache patches (the default), one that always recompiles on
    /// relabel (`patch_relabel_fraction(0.0)`), and one that recompiles
    /// every single epoch (`clear_cached_plan`) produce identical
    /// per-epoch answers, adaptation trajectories, and stats.
    #[test]
    fn patching_sessions_match_recompiling_sessions_all_schemes(
        seed in 0u64..1_000,
        loss_pct in 0u32..35,
    ) {
        let mut rng = rng_from_seed(9100 + seed);
        let net = Network::random_connected(
            160, 16.0, 16.0, Position::new(8.0, 8.0), 2.8, &mut rng,
        );
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 23).collect();
        let model = Global::new(loss_pct as f64 / 100.0);
        let epochs = 35u64;
        for scheme in Scheme::all() {
            let run = |patch_fraction: f64, clear_every_epoch: bool| {
                let mut rng = rng_from_seed(40 + seed);
                let mut session = SessionBuilder::new(scheme)
                    .adapt_every(5)
                    .patch_relabel_fraction(patch_fraction)
                    .build(&net, &mut rng);
                let mut outs = Vec::new();
                for epoch in 0..epochs {
                    if clear_every_epoch {
                        session.clear_cached_plan();
                    }
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
                    outs.push((rec.output, rec.contributing, rec.delta_size, rec.action));
                }
                (outs, session.stats().clone(), session.plan_stats())
            };
            let (patched, patched_stats, patched_plan) = run(1.0, false);
            let (recompiled, recompiled_stats, recompiled_plan) = run(0.0, false);
            let (rebuilt, rebuilt_stats, _) = run(1.0, true);
            prop_assert_eq!(&patched, &recompiled, "patch vs recompile diverged ({})", scheme.name());
            prop_assert_eq!(&patched, &rebuilt, "patch vs rebuild diverged ({})", scheme.name());
            prop_assert_eq!(&patched_stats, &recompiled_stats);
            prop_assert_eq!(&patched_stats, &rebuilt_stats);

            // The counters prove which path ran: an adapting patched
            // session compiled exactly once; the fraction-0 session
            // recompiled once per relabel instead of patching. A move
            // on the final epoch bumps the version with no epoch left
            // to consume it, so only earlier moves count.
            prop_assert_eq!(patched_plan.compiles, 1);
            prop_assert_eq!(recompiled_plan.patches, 0);
            let moves = patched[..patched.len() - 1]
                .iter()
                .filter(|(_, _, _, action)| matches!(
                    action,
                    td_suite::core::adapt::AdaptAction::Expanded { .. }
                        | td_suite::core::adapt::AdaptAction::Shrunk { .. }
                ))
                .count() as u64;
            if matches!(scheme, Scheme::TdCoarse | Scheme::Td) {
                prop_assert_eq!(patched_plan.patches, moves);
                prop_assert_eq!(recompiled_plan.compiles, 1 + moves);
            } else {
                // TAG and SD never relabel: nothing to patch anywhere.
                prop_assert_eq!(patched_plan.patches, 0);
                prop_assert_eq!(recompiled_plan.compiles, 1);
            }
        }
    }
}

/// A long adapting TD-Coarse run under heavy loss: the plan cache must
/// ride through every whole-level move with patches alone (one compile
/// at session start), absorbing the relabels the moves produced.
#[test]
fn adaptation_patches_instead_of_recompiling() {
    let mut rng = rng_from_seed(6200);
    let net = Network::random_connected(300, 20.0, 20.0, Position::new(10.0, 10.0), 2.8, &mut rng);
    let values: Vec<u64> = vec![1; net.len()];
    let model = Global::new(0.3);
    let mut session = SessionBuilder::new(Scheme::TdCoarse)
        .patch_relabel_fraction(1.0)
        .build(&net, &mut rng);
    let mut moves = 0u64;
    let epochs = 120u64;
    for epoch in 0..epochs {
        let proto = ScalarProtocol::new(td_suite::aggregates::count::Count::default(), &values);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        // A move on the final epoch has no follow-up epoch to patch in.
        let followed_by_an_epoch = epoch + 1 < epochs;
        if followed_by_an_epoch
            && !matches!(
                rec.action,
                td_suite::core::adapt::AdaptAction::Idle
                    | td_suite::core::adapt::AdaptAction::Satisfied
            )
        {
            moves += 1;
        }
    }
    let stats = session.plan_stats();
    assert!(moves > 0, "adaptation never moved");
    assert_eq!(stats.compiles, 1, "adaptation recompiled: {stats:?}");
    assert_eq!(stats.patches, moves, "patch per move: {stats:?}");
    assert!(
        stats.patched_relabels >= moves,
        "relabels absorbed: {stats:?}"
    );
}

/// The default patch threshold (25% of the network) really gates: a
/// whole-network relabel falls back to recompilation.
#[test]
fn oversized_deltas_fall_back_to_recompile() {
    let (_, mut td) = build_topo(6300, 200, 1);
    let mut plan = EpochPlan::compile_td(&td);
    // Expand level by level until everything is in the delta — far more
    // than 25% of the network relabeled in aggregate.
    let mut total = 0;
    while td.expand_all() > 0 {
        total += 1;
        assert!(total < 100, "expansion did not terminate");
    }
    let relabels = td
        .relabels_since(plan.compiled_version().unwrap())
        .expect("log covers");
    assert!(relabels > td.len() / 4);
    assert!(
        plan.patch(&td, td.len() / 4).is_none(),
        "oversized patch accepted"
    );
    // Within a generous budget the same patch applies and still matches
    // a fresh compile.
    assert_eq!(plan.patch(&td, td.len()), Some(relabels));
    assert_eq!(
        plan.structural_digest(),
        EpochPlan::compile_td(&td).structural_digest()
    );
}
