//! Cross-crate invariant tests: the paper's structural properties hold
//! through adversarial, multi-epoch, adapting executions.

use proptest::prelude::*;
use td_suite::aggregates::count::Count;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, Session, SessionConfig};
use td_suite::netsim::loss::{DeadNodes, Global};
use td_suite::netsim::network::Network;
use td_suite::netsim::node::{NodeId, Position};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::topology::bushy::{build_bushy_tree, BushyOptions};
use td_suite::topology::rings::Rings;
use td_suite::topology::td::TdTopology;

fn net(seed: u64, sensors: usize) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(sensors, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng)
}

/// Edge/path correctness (Properties 1–2) must hold after every epoch of
/// an adapting session under chaotic loss.
#[test]
fn correctness_properties_hold_through_adaptation() {
    let net = net(21, 200);
    let values = vec![1u64; net.len()];
    for scheme in [Scheme::TdCoarse, Scheme::Td] {
        let mut rng = rng_from_seed(22);
        let mut session = Session::new(SessionConfig::paper_defaults(scheme), &net, &mut rng);
        for epoch in 0..120u64 {
            // Loss oscillates to provoke both expansion and shrinking.
            let p = if (epoch / 30) % 2 == 0 { 0.35 } else { 0.02 };
            let proto = ScalarProtocol::new(Count::default(), &values);
            session.run_epoch(&proto, &Global::new(p), epoch, &mut rng);
            let topo = session.topology().expect("TD scheme has a topology");
            topo.validate().unwrap_or_else(|e| {
                panic!(
                    "{} violated invariants at epoch {epoch}: {e}",
                    scheme.name()
                )
            });
            assert!(topo.check_path_correctness(), "path correctness broken");
        }
    }
}

/// Lemma 1: while both vertex classes exist, both switchable sets are
/// non-empty — checked across the delta sizes an adapting session visits.
#[test]
fn lemma1_through_adaptation() {
    let net = net(23, 150);
    let values = vec![1u64; net.len()];
    let mut rng = rng_from_seed(24);
    let mut session = Session::with_paper_defaults(Scheme::TdCoarse, &net, &mut rng);
    for epoch in 0..80u64 {
        let p = if (epoch / 20) % 2 == 0 { 0.4 } else { 0.0 };
        let proto = ScalarProtocol::new(Count::default(), &values);
        session.run_epoch(&proto, &Global::new(p), epoch, &mut rng);
        let topo = session.topology().unwrap();
        if topo.tributary_size() > 0 {
            assert!(!topo.switchable_t_nodes().is_empty());
        }
        if topo.delta_size() > 0 {
            assert!(!topo.switchable_m_nodes().is_empty());
        }
    }
}

/// Dead nodes (failure injection) never corrupt answers — they only
/// reduce the contributing set.
#[test]
fn dead_nodes_reduce_but_never_corrupt() {
    let net = net(25, 150);
    let values = vec![1u64; net.len()];
    let dead: Vec<NodeId> = (1..=20).map(NodeId).collect();
    let model = DeadNodes::new(&dead, net.len(), Global::new(0.05));
    let mut rng = rng_from_seed(26);
    let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
    for epoch in 0..40 {
        let proto = ScalarProtocol::new(Count::default(), &values);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        assert!(rec.contributing <= net.num_sensors() - dead.len());
        // The estimate never exceeds a sane bound over the live population.
        assert!(rec.output <= net.num_sensors() as f64 * 1.6);
    }
}

/// The §4.1 synchronization constraint: every session-built TD topology
/// keeps tree links inside ring links, parents exactly one level down.
#[test]
fn tree_links_subset_of_ring_links() {
    for seed in [31u64, 32, 33] {
        let net = net(seed, 120);
        let rings = Rings::build(&net);
        let mut rng = rng_from_seed(seed ^ 0xF);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        let td = TdTopology::new(rings, tree, 1);
        for u in td.rings().connected_nodes() {
            if let Some(p) = td.tree().parent(u) {
                assert!(net.in_range(u, p), "tree link {u}->{p} not a radio link");
                assert_eq!(
                    td.rings().level(p).unwrap() + 1,
                    td.rings().level(u).unwrap(),
                    "parent not one ring level down"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random expand/shrink walks over random deployments preserve the
    /// topology invariants (fuzzing the switchability machinery from
    /// outside the crate that implements it).
    #[test]
    fn prop_random_walks_preserve_invariants(seed in 0u64..500, steps in 1usize..60) {
        let mut rng = rng_from_seed(seed);
        let net = Network::random_connected(80, 9.0, 9.0, Position::new(4.5, 4.5), 2.5, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        let mut td = TdTopology::new(rings, tree, 1);
        use rand::Rng;
        for _ in 0..steps {
            if rng.gen_bool(0.5) {
                let ts = td.switchable_t_nodes();
                if let Some(&u) = ts.get(rng.gen_range(0..ts.len().max(1)).min(ts.len().saturating_sub(1))) {
                    let _ = td.switch_to_m(u);
                }
            } else {
                let ms = td.switchable_m_nodes();
                if let Some(&u) = ms.get(rng.gen_range(0..ms.len().max(1)).min(ms.len().saturating_sub(1))) {
                    let _ = td.switch_to_t(u);
                }
            }
            prop_assert!(td.validate().is_ok());
            prop_assert!(td.check_path_correctness());
        }
    }
}
