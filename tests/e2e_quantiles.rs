//! End-to-end quantile-query pins (the §6.1.4 extension as a
//! first-class query class):
//!
//! (a) a bundle carrying N quantile queries (GK and q-digest) next to a
//!     scalar and a frequent-items query answers every one bit-identically
//!     to dedicated single-query sessions, at ONE traversal's rounds —
//!     for all four schemes;
//! (b) GK and q-digest rank error stays within the summary's
//!     self-reported uncertainty `E` at EVERY tree height, under random
//!     topologies and random subtree loss — the validity invariant the
//!     precision gradient rides on;
//! (c) windowed quantile answers from the incremental accumulators
//!     (digest subtract-on-evict, GK per-evict refold) are bit-equal to
//!     the from-scratch pane refold across adaptation relabels and
//!     churn, for all four schemes and worker counts 1, 2, and 8.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::Driver;
use td_suite::core::protocol::{
    FreqProtocol, Protocol, QuantileOutput, QuantileProtocol, ScalarProtocol,
};
use td_suite::core::query::QuerySet;
use td_suite::core::session::{Scheme, Session, SessionBuilder};
use td_suite::frequent::items::ItemBag;
use td_suite::frequent::multipath::MultipathConfig;
use td_suite::netsim::churn::ChurnSchedule;
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::{NodeId, Position};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::quantiles::gradient::MinTotalLoad;
use td_suite::quantiles::{GkSummary, QDigest, QuantileSummary};
use td_suite::sketches::counter::ExactFactory;
use td_suite::stream::{
    EpochMerge, FoldMode, QuantileStreamQuery, StreamQuery, StreamSession, WindowSpec,
};
use td_suite::workloads::synthetic::Synthetic;
use td_suite::workloads::workload::DriftingStream;
use tributary_delta::driver::Workload;

const SEED: u64 = 61404;
const EPOCHS: u64 = 25;
const QD_BITS: u32 = 16;

// ---------------------------------------------------------------------
// (a) bundled ≡ dedicated, one traversal
// ---------------------------------------------------------------------

struct Fixture {
    net: Network,
    values: Vec<u64>,
    bags: Vec<ItemBag>,
    mp_cfg: MultipathConfig<ExactFactory>,
    gradient: MinTotalLoad,
}

fn fixture(scheme_salt: u64) -> Fixture {
    let mut rng = rng_from_seed(SEED ^ scheme_salt);
    let net = Network::random_connected(150, 13.0, 13.0, Position::new(6.5, 6.5), 2.5, &mut rng);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 10 + (i * 13) % 900).collect();
    let bags: Vec<ItemBag> = (0..net.len())
        .map(|i| {
            if i == 0 {
                ItemBag::new()
            } else {
                ItemBag::from_counts([(1u64, 30), (2 + i as u64 % 5, 8)])
            }
        })
        .collect();
    let n_total: u64 = bags.iter().map(|b| b.total()).sum();
    Fixture {
        net,
        values,
        bags,
        mp_cfg: MultipathConfig::new(0.01, 1.5, n_total * 2, ExactFactory),
        gradient: MinTotalLoad::new(0.02, 2.25),
    }
}

fn fresh_session(fx: &Fixture, scheme: Scheme) -> (Session, rand::rngs::StdRng) {
    let mut rng = rng_from_seed(SEED + 1);
    let session = SessionBuilder::new(scheme).build(&fx.net, &mut rng);
    (session, rng)
}

/// Run one dedicated single-query session over the whole epoch range
/// and return the per-epoch outputs plus the session's round count.
fn run_dedicated<P: Protocol>(
    fx: &Fixture,
    scheme: Scheme,
    model: &Global,
    mut make: impl FnMut() -> P,
) -> (Vec<P::Output>, u64, u64) {
    let (mut session, mut rng) = fresh_session(fx, scheme);
    let mut out = Vec::new();
    for epoch in 0..EPOCHS {
        let proto = make();
        out.push(session.run_epoch(&proto, model, epoch, &mut rng).output);
    }
    (
        out,
        session.stats().total_rounds(),
        session.stats().total_bytes(),
    )
}

fn check_bundled_scheme(scheme: Scheme, scheme_salt: u64) {
    let fx = fixture(scheme_salt);
    let model = Global::new(0.2);

    let (gk_single, gk_rounds, _) = run_dedicated(&fx, scheme, &model, || {
        QuantileProtocol::gk(fx.gradient, &fx.values)
    });
    let (qd_single, qd_rounds, _) = run_dedicated(&fx, scheme, &model, || {
        QuantileProtocol::qdigest(QD_BITS, fx.gradient, &fx.values)
    });
    let (sum_single, sum_rounds, _) = run_dedicated(&fx, scheme, &model, || {
        ScalarProtocol::new(Sum::default(), &fx.values)
    });
    let (freq_single, freq_rounds, _) = run_dedicated(&fx, scheme, &model, || {
        FreqProtocol::new(fx.mp_cfg.clone(), fx.gradient, 0.15, &fx.bags)
    });
    assert!(
        [qd_rounds, sum_rounds, freq_rounds]
            .iter()
            .all(|&r| r == gk_rounds),
        "{}: dedicated sessions diverged in rounds",
        scheme.name()
    );

    // The bundle: both quantile families + scalar + frequent, one set.
    let (mut session, mut rng) = fresh_session(&fx, scheme);
    let mut gk_bundle: Vec<QuantileOutput<GkSummary>> = Vec::new();
    let mut qd_bundle: Vec<QuantileOutput<QDigest>> = Vec::new();
    let mut sum_bundle = Vec::new();
    let mut freq_reports = Vec::new();
    for epoch in 0..EPOCHS {
        let gk_p = QuantileProtocol::gk(fx.gradient, &fx.values);
        let qd_p = QuantileProtocol::qdigest(QD_BITS, fx.gradient, &fx.values);
        let sum_p = ScalarProtocol::new(Sum::default(), &fx.values);
        let freq_p = FreqProtocol::new(fx.mp_cfg.clone(), fx.gradient, 0.15, &fx.bags);
        let mut set = QuerySet::new();
        let h_gk = set.register(&gk_p);
        let h_qd = set.register(&qd_p);
        let h_sum = set.register(&sum_p);
        let h_freq = set.register(&freq_p);
        let mut rec = session.run_set(&set, &model, epoch, &mut rng);
        gk_bundle.push(rec.answers.take(h_gk));
        qd_bundle.push(rec.answers.take(h_qd));
        sum_bundle.push(*rec.answers.get(h_sum));
        freq_reports.push(rec.answers.take(h_freq).reported);
    }

    // Bit-for-bit equivalence: summaries are structural (`PartialEq`),
    // so this pins every tuple/node, not just the median.
    assert_eq!(gk_bundle, gk_single, "{}: GK diverged", scheme.name());
    assert_eq!(qd_bundle, qd_single, "{}: q-digest diverged", scheme.name());
    assert_eq!(sum_bundle, sum_single, "{}: Sum diverged", scheme.name());
    for (b, a) in freq_reports.iter().zip(&freq_single) {
        assert_eq!(b, &a.reported, "{}: frequent diverged", scheme.name());
    }

    // The whole bundle still costs one traversal's rounds.
    assert_eq!(
        session.stats().total_rounds(),
        gk_rounds,
        "{}: bundled rounds exceed one traversal",
        scheme.name()
    );

    // Sanity on content: the final GK median is within E of the true
    // median of the contributing population (coverage < 1 under loss, so
    // compare rank error against the summary's own population).
    let last = gk_bundle.last().unwrap();
    assert!(last.population() > 0);
    let med = last.quantile(0.5).unwrap();
    let target = last.population().div_ceil(2);
    assert!(
        last.summary.rank(med).abs_diff(target) <= last.uncertainty() + 1,
        "{}: median rank off by more than E",
        scheme.name()
    );
}

#[test]
fn td_quantile_bundle_matches_dedicated_sessions() {
    check_bundled_scheme(Scheme::Td, 1);
}

#[test]
fn td_coarse_quantile_bundle_matches_dedicated_sessions() {
    check_bundled_scheme(Scheme::TdCoarse, 2);
}

#[test]
fn sd_quantile_bundle_matches_dedicated_sessions() {
    check_bundled_scheme(Scheme::Sd, 3);
}

#[test]
fn tag_quantile_bundle_matches_dedicated_sessions() {
    check_bundled_scheme(Scheme::Tag, 4);
}

// ---------------------------------------------------------------------
// (b) rank error ≤ self-reported E at every height, under loss
// ---------------------------------------------------------------------

/// Aggregate a random subtree bottom-up through the protocol's own
/// methods, dropping whole subtrees with the given probability (a lost
/// link loses the subtree's entire message, exactly as in the runner).
/// Returns the finalized message plus the multiset of values it
/// actually includes, and checks the validity invariant at this height.
fn aggregate_subtree<S: QuantileSummary, G: td_suite::quantiles::PrecisionGradient>(
    p: &QuantileProtocol<'_, S, G>,
    children: &[Vec<usize>],
    values: &[u64],
    node: usize,
    drops: &[bool],
) -> Option<(S, Vec<u64>, u32)> {
    let mut msg = p.local_tree(NodeId(node as u32))?;
    let mut included = vec![values[node]];
    let mut height = 0u32;
    for &c in &children[node] {
        if drops[c] {
            continue; // lost link: the whole subtree is gone
        }
        if let Some((child_msg, child_vals, child_h)) =
            aggregate_subtree(p, children, values, c, drops)
        {
            p.merge_tree(&mut msg, &child_msg);
            included.extend(child_vals);
            height = height.max(child_h + 1);
        }
    }
    let msg = p.finalize_tree(NodeId(node as u32), height, msg);

    // The invariant under test: at EVERY height, for every probe value,
    // the reduced summary's rank is within its self-reported E of the
    // true rank over exactly the values it merged.
    let mut sorted = included.clone();
    sorted.sort_unstable();
    assert_eq!(msg.population(), included.len() as u64);
    for &v in &sorted {
        let true_rank = sorted.partition_point(|&x| x <= v) as u64;
        let lo = sorted.partition_point(|&x| x < v) as u64;
        let got = msg.rank(v);
        let err = if got < lo {
            lo - got
        } else {
            got.saturating_sub(true_rank)
        };
        assert!(
            err <= msg.uncertainty(),
            "{} node {node} height {height}: rank({v}) = {got}, true in [{lo}, {true_rank}], E = {}",
            msg.kind_name(),
            msg.uncertainty()
        );
    }
    Some((msg, included, height))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (b) the validity invariant holds at every height of a random
    /// tree with random subtree loss, for both summary families.
    #[test]
    fn rank_error_within_reported_uncertainty_at_every_height(
        n in 8usize..60,
        seed in 0u64..1_000_000,
        drop_pct in 0u32..30,
        eps in 1u32..8,
    ) {
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        // Random rooted tree: node i's parent is uniform in 1..i
        // (node 0 is the base station and holds no reading).
        let mut children = vec![Vec::new(); n];
        for i in 2..n {
            let parent = rng.gen_range(1..i);
            children[parent].push(i);
        }
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50_000)).collect();
        let drops: Vec<bool> = (0..n)
            .map(|i| i > 1 && rng.gen_range(0u32..100) < drop_pct)
            .collect();
        let gradient = MinTotalLoad::new(f64::from(eps) / 100.0, 2.25);

        let gk = QuantileProtocol::gk(gradient, &values);
        let (msg, included, h) =
            aggregate_subtree(&gk, &children, &values, 1, &drops).unwrap();
        // The root's finalized message survives one more evaluate.
        let out = gk.evaluate(&[msg], None, h + 1);
        prop_assert_eq!(out.population(), included.len() as u64);

        let qd = QuantileProtocol::qdigest(QD_BITS, gradient, &values);
        let (msg, included, h) =
            aggregate_subtree(&qd, &children, &values, 1, &drops).unwrap();
        let out = qd.evaluate(&[msg], None, h + 1);
        prop_assert_eq!(out.population(), included.len() as u64);
    }
}

// ---------------------------------------------------------------------
// (c) windowed quantiles: incremental ≡ refold under churn + relabels
// ---------------------------------------------------------------------

/// Everything determinism-relevant in a quantile window report, floats
/// bit-exact and the merged summary structural.
type QuantileFingerprint = (
    (usize, usize),
    (u64, u64, usize),
    (u64, u64, u64),
    (u32, u64, u64, u64),
    Option<td_suite::stream::QuantilePane>,
);

fn quantile_fingerprint(r: &td_suite::stream::WindowReport) -> QuantileFingerprint {
    (
        (r.handle.query, r.handle.window),
        (r.start_epoch, r.end_epoch, r.panes),
        (
            r.answer.to_bits(),
            r.coverage.to_bits(),
            r.min_coverage.to_bits(),
        ),
        (r.relabels, r.nodes_joined, r.nodes_left, r.comm_bytes()),
        r.quantile.as_deref().cloned(),
    )
}

/// Per-report `(relabels, answer bits, population, E, p99)` rows, the
/// flattened full-fingerprint word stream, and the max relabel count.
type WindowedTrace = (Vec<(u32, u64, u64, u64, u64)>, Vec<u64>, u64);

fn windowed_run(
    net: &Network,
    workload: &impl Workload,
    scheme: Scheme,
    workers: usize,
    digest: bool,
    mode: FoldMode,
) -> WindowedTrace {
    let gradient = MinTotalLoad::new(0.02, 2.25);
    if digest {
        windowed_run_family(
            net,
            workload,
            scheme,
            workers,
            QuantileStreamQuery::qdigest(QD_BITS, gradient),
            mode,
        )
    } else {
        windowed_run_family(
            net,
            workload,
            scheme,
            workers,
            QuantileStreamQuery::gk(gradient),
            mode,
        )
    }
}

fn windowed_run_family<S: td_suite::stream::IntoQuantilePane>(
    net: &Network,
    workload: &impl Workload,
    scheme: Scheme,
    workers: usize,
    source: QuantileStreamQuery<S, MinTotalLoad>,
    mode: FoldMode,
) -> WindowedTrace {
    let mut rng = rng_from_seed(SEED ^ 0xF01D);
    let session = SessionBuilder::new(scheme).build(net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, 1));
    stream.set_workers(workers);
    let windows = [
        (WindowSpec::sliding(6, 1), EpochMerge::Add),
        (WindowSpec::sliding(8, 3), EpochMerge::Add),
        (WindowSpec::tumbling(4), EpochMerge::Add),
        (WindowSpec::landmark(), EpochMerge::Add),
    ];
    let mut query = StreamQuery::new(source);
    for &(spec, merge) in &windows {
        query = query.window(spec, merge);
    }
    let _ = stream.register(query);
    stream.set_fold_mode(mode);
    let schedule = ChurnSchedule::new(net.len(), 0.02, 5.0, SEED ^ 0xC4);
    let reports = stream.run_under_churn(workload, &Global::new(0.25), &schedule, 30, &mut rng);
    let relabels = reports.iter().map(|r| r.relabels).max().unwrap_or(0);
    // Median extraction goes through the merged summary: the scalar
    // answer the report carries IS that summary's median.
    for r in &reports {
        let q = r.quantile.as_ref().expect("quantile windows carry panes");
        assert_eq!(r.answer.to_bits(), q.median().to_bits());
    }
    let fingerprints = reports
        .iter()
        .map(|r| {
            let q = r.quantile.as_ref().unwrap();
            (
                r.relabels,
                r.answer.to_bits(),
                q.population(),
                q.uncertainty(),
                q.quantile(0.99).unwrap_or(0),
            )
        })
        .collect();
    let full: Vec<u64> = reports
        .iter()
        .flat_map(|r| {
            let (a, b, c, d, e) = {
                let q = quantile_fingerprint(r);
                (
                    q.0 .0 as u64 ^ (q.0 .1 as u64) << 32,
                    q.1 .0 ^ q.1 .1,
                    q.2 .0 ^ q.2 .1 ^ q.2 .2,
                    u64::from(q.3 .0) ^ q.3 .1 ^ q.3 .2 ^ q.3 .3,
                    q.4.map_or(0, |p| p.population() ^ p.rank(500)),
                )
            };
            [a, b, c, d, e]
        })
        .collect();
    (fingerprints, full, u64::from(relabels))
}

#[test]
fn windowed_quantiles_incremental_matches_refold_across_schemes_and_workers() {
    let mut rng = rng_from_seed(SEED ^ 7);
    let net = Network::random_connected(120, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, SEED), SEED ^ 5);
    let mut any_relabel = false;
    for scheme in Scheme::all() {
        for digest in [false, true] {
            // Worker counts exercise the level-parallel runner: the
            // reference refold run stays at 1 worker, the incremental
            // runs sweep 1/2/8 — all four must agree bit-for-bit.
            let (reference, full_ref, relabels) =
                windowed_run(&net, &workload, scheme, 1, digest, FoldMode::Refold);
            any_relabel |= relabels > 0;
            for workers in [1usize, 2, 8] {
                let (inc, full_inc, _) = windowed_run(
                    &net,
                    &workload,
                    scheme,
                    workers,
                    digest,
                    FoldMode::Incremental,
                );
                assert_eq!(
                    inc,
                    reference,
                    "{} digest={digest} workers={workers}: incremental diverged from refold",
                    scheme.name()
                );
                assert_eq!(
                    full_inc,
                    full_ref,
                    "{} digest={digest} workers={workers}: full fingerprint diverged",
                    scheme.name()
                );
            }
        }
    }
    assert!(
        any_relabel,
        "no adaptation relabel landed inside any window — the churn half of this pin is vacuous"
    );
}
