//! Tier-1 determinism of the parallel trial executor: a
//! [`Driver::run_trials`] batch over N trials must be **bit-for-bit
//! identical** — per-trial answers and merged [`CommStats`] — to running
//! the same N trials sequentially over the pool's advertised substreams,
//! under every aggregation scheme and at any thread count.

use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::{Driver, FixedReadings, TrialPool};
use td_suite::core::session::{Scheme, Session};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::netsim::stats::CommStats;

const TRIALS: u64 = 6;
const SEED: u64 = 7711;

fn test_net() -> Network {
    let mut rng = rng_from_seed(4001);
    Network::random_connected(180, 14.0, 14.0, Position::new(7.0, 7.0), 2.5, &mut rng)
}

/// One full trial: build a session from the trial's substream, run a
/// warmed-up lossy Sum scenario, report the measured estimate series and
/// the trial's communication accounting.
fn trial(
    scheme: Scheme,
    net: &Network,
    values: &[u64],
    rng: &mut rand::rngs::StdRng,
) -> (Vec<f64>, CommStats) {
    let session = Session::with_paper_defaults(scheme, net, rng);
    let mut driver = Driver::new(session, 3);
    let run = driver.run_scalar(
        &Sum::default(),
        &FixedReadings(values.to_vec()),
        &Global::new(0.25),
        10,
        |readings| readings[1..].iter().sum::<u64>() as f64,
        rng,
    );
    (run.estimates, driver.into_session().stats().clone())
}

#[test]
fn run_trials_is_bit_identical_to_sequential_under_every_scheme() {
    let net = test_net();
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 40).collect();
    for scheme in Scheme::all() {
        // Sequential baseline: a plain loop over the pool's advertised
        // per-trial substreams, merging stats the same way.
        let mut seq_outputs = Vec::new();
        let mut seq_stats: Option<CommStats> = None;
        for t in 0..TRIALS {
            let mut rng = TrialPool::trial_rng(SEED, t);
            let (out, stats) = trial(scheme, &net, &values, &mut rng);
            match &mut seq_stats {
                Some(acc) => acc.merge(&stats),
                none => *none = Some(stats),
            }
            seq_outputs.push(out);
        }

        for threads in [1usize, 2, 4, 16] {
            let batch = Driver::run_trials(
                &TrialPool::with_threads(threads),
                SEED,
                TRIALS,
                |_t, rng| trial(scheme, &net, &values, rng),
            );
            assert_eq!(
                batch.outputs,
                seq_outputs,
                "{} answers diverged at {threads} threads",
                scheme.name()
            );
            assert_eq!(
                batch.stats,
                seq_stats,
                "{} CommStats diverged at {threads} threads",
                scheme.name()
            );
        }
    }
}

#[test]
fn run_sweep_is_bit_identical_to_nested_sequential_loops() {
    let net = test_net();
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 2 + i % 25).collect();
    let points = [0.0f64, 0.2, 0.4];
    let trials_per_point = 2u64;

    let job = |p: f64, rng: &mut rand::rngs::StdRng| {
        let session = Session::with_paper_defaults(Scheme::Td, &net, rng);
        let mut driver = Driver::new(session, 2);
        let run = driver.run_scalar(
            &Sum::default(),
            &FixedReadings(values.clone()),
            &Global::new(p),
            6,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            rng,
        );
        (run.estimates, driver.into_session().stats().clone())
    };

    let batches = Driver::run_sweep(
        &TrialPool::with_threads(4),
        SEED,
        &points,
        trials_per_point,
        |&p, _t, rng| job(p, rng),
    );
    assert_eq!(batches.len(), points.len());

    for (pi, (&p, batch)) in points.iter().zip(&batches).enumerate() {
        let mut expect_stats: Option<CommStats> = None;
        for t in 0..trials_per_point {
            let global = pi as u64 * trials_per_point + t;
            let mut rng = TrialPool::trial_rng(SEED, global);
            let (out, stats) = job(p, &mut rng);
            assert_eq!(batch.outputs[t as usize], out, "p={p} trial {t}");
            match &mut expect_stats {
                Some(acc) => acc.merge(&stats),
                none => *none = Some(stats),
            }
        }
        assert_eq!(batch.stats, expect_stats, "p={p} stats");
    }
}
