//! End-to-end runs of every scalar aggregate through every aggregation
//! scheme — the cross-crate integration surface a user touches first.

use td_suite::aggregates::average::Average;
use td_suite::aggregates::count::Count;
use td_suite::aggregates::minmax::{Max, Min};
use td_suite::aggregates::sample_agg::SampledQuantile;
use td_suite::aggregates::sum::Sum;
use td_suite::aggregates::traits::Aggregate;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, Session};
use td_suite::netsim::loss::{Global, NoLoss};
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;

fn test_net(seed: u64) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(150, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng)
}

fn run_lossless<A: Aggregate>(agg: A, values: &[u64], net: &Network, scheme: Scheme) -> f64 {
    let mut rng = rng_from_seed(99);
    let mut session = Session::with_paper_defaults(scheme, net, &mut rng);
    let mut out = 0.0;
    for epoch in 0..3 {
        let proto = ScalarProtocol::new(agg.clone(), values);
        out = session.run_epoch(&proto, &NoLoss, epoch, &mut rng).output;
    }
    out
}

#[test]
fn count_all_schemes_lossless() {
    let net = test_net(1);
    let values = vec![1u64; net.len()];
    let truth = net.num_sensors() as f64;
    for scheme in Scheme::all() {
        let out = run_lossless(Count::default(), &values, &net, scheme);
        let rel = (out - truth).abs() / truth;
        let tol = match scheme {
            Scheme::Tag => 1e-9, // trees are exact
            _ => 0.4,            // sketch error budget
        };
        assert!(
            rel <= tol,
            "{}: count {out} vs {truth} (rel {rel})",
            scheme.name()
        );
    }
}

#[test]
fn sum_all_schemes_lossless() {
    let net = test_net(2);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 10 + i % 50).collect();
    let truth: f64 = values[1..].iter().sum::<u64>() as f64;
    for scheme in Scheme::all() {
        let out = run_lossless(Sum::default(), &values, &net, scheme);
        let rel = (out - truth).abs() / truth;
        let tol = if scheme == Scheme::Tag { 1e-9 } else { 0.4 };
        assert!(rel <= tol, "{}: sum {out} vs {truth}", scheme.name());
    }
}

#[test]
fn min_max_exact_in_every_scheme() {
    let net = test_net(3);
    let mut values: Vec<u64> = (0..net.len() as u64)
        .map(|i| 100 + (i * 37) % 900)
        .collect();
    values[13] = 7; // global min
    values[77] = 5000; // global max
    for scheme in Scheme::all() {
        assert_eq!(
            run_lossless(Min, &values, &net, scheme),
            7.0,
            "{}",
            scheme.name()
        );
        assert_eq!(
            run_lossless(Max, &values, &net, scheme),
            5000.0,
            "{}",
            scheme.name()
        );
    }
}

#[test]
fn average_close_in_every_scheme() {
    let net = test_net(4);
    let values = vec![40u64; net.len()];
    for scheme in Scheme::all() {
        let out = run_lossless(Average::default(), &values, &net, scheme);
        assert!(
            (out - 40.0).abs() < 16.0,
            "{}: average {out}",
            scheme.name()
        );
    }
}

#[test]
fn sampled_median_reasonable() {
    let net = test_net(5);
    let values: Vec<u64> = (0..net.len() as u64).collect();
    let truth = net.len() as f64 / 2.0;
    for scheme in [Scheme::Tag, Scheme::Sd] {
        let out = run_lossless(SampledQuantile::new(64, 0.5), &values, &net, scheme);
        assert!(
            (out - truth).abs() < truth * 0.5,
            "{}: median {out} vs ~{truth}",
            scheme.name()
        );
    }
}

#[test]
fn lossy_ordering_tree_worst_td_tracks_best() {
    // The paper's headline in one integration test: at a realistic loss
    // rate, the tree underestimates badly, multi-path holds up, and TD
    // tracks the better of the two.
    let net = test_net(6);
    let values = vec![1u64; net.len()];
    let truth = net.num_sensors() as f64;
    let model = Global::new(0.3);
    let mut answers = std::collections::BTreeMap::new();
    for scheme in Scheme::all() {
        let mut rng = rng_from_seed(100);
        let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
        let mut total = 0.0;
        let epochs = 60u64;
        for epoch in 0..epochs {
            let proto = ScalarProtocol::new(Count::default(), &values);
            total += session.run_epoch(&proto, &model, epoch, &mut rng).output;
        }
        answers.insert(scheme.name(), total / epochs as f64);
    }
    let err = |s: &str| (answers[s] - truth).abs() / truth;
    assert!(
        err("TAG") > 2.0 * err("SD"),
        "TAG err {} vs SD err {}",
        err("TAG"),
        err("SD")
    );
    assert!(
        err("TD") < err("TAG"),
        "TD err {} vs TAG err {}",
        err("TD"),
        err("TAG")
    );
}

#[test]
fn stats_accumulate_across_epochs() {
    let net = test_net(7);
    let values = vec![1u64; net.len()];
    let mut rng = rng_from_seed(101);
    let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
    for epoch in 0..5 {
        let proto = ScalarProtocol::new(Count::default(), &values);
        session.run_epoch(&proto, &NoLoss, epoch, &mut rng);
    }
    let stats = session.stats();
    // Every sensor transmits once per epoch.
    assert!(stats.total_messages() >= 5 * net.num_sensors() as u64);
    assert!(stats.total_bytes() > 0);
}
