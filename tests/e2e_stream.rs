//! End-to-end streaming window engine pins:
//!
//! (a) a `tumbling(1)` window is bit-identical to the per-epoch
//!     `run_set` answers under every scheme;
//! (b) sliding windows are recompute-free — panes per epoch equal the
//!     underlying query count (never the window count) and the
//!     traversal cost equals a plain single-query session's;
//! (c) window answers are stable across an adaptation relabel
//!     mid-window: every report is exactly the pane-algebra fold of the
//!     recorded per-epoch answers, even when the topology was relabeled
//!     between its panes;
//! (d) the stream engine inherits incremental plan patching unchanged:
//!     a windowed run over a session whose plan cache patches on
//!     relabel is bit-identical to one that recompiles on relabel;
//! (e) `step`/`step_under_churn` are the exact single-epoch units of
//!     `run`/`run_under_churn`: a hand-rolled step loop is bit-identical
//!     to the batch run, reports and stats included — the contract the
//!     service layer's epoch multiplexing rests on;
//! (f) `StreamSession` is `Send` (statically asserted), so whole
//!     sessions can be handed to service worker threads.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::Driver;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_suite::workloads::synthetic::Synthetic;
use td_suite::workloads::workload::DriftingStream;
use tributary_delta::driver::Workload;

fn net(seed: u64, sensors: usize) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::random_connected(sensors, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng)
}

/// Per-epoch baseline: the same session construction and rng stream as
/// the `StreamSession` run, answered one epoch at a time through
/// `run_epoch`. Returns the measured epochs' `(epoch, answer)` pairs.
fn baseline_epochs<W: Workload>(
    scheme: Scheme,
    net: &Network,
    workload: &W,
    loss: f64,
    warmup: u64,
    epochs: u64,
    seed: u64,
) -> Vec<(u64, f64)> {
    let model = Global::new(loss);
    let mut rng = rng_from_seed(seed);
    let mut session = SessionBuilder::new(scheme).build(net, &mut rng);
    let mut out = Vec::new();
    for epoch in 0..warmup + epochs {
        let readings = workload.readings(epoch);
        let proto = ScalarProtocol::new(Sum::default(), &readings);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        if epoch >= warmup {
            out.push((epoch, rec.output));
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn stream_run_with<W: Workload>(
    scheme: Scheme,
    net: &Network,
    workload: &W,
    loss: f64,
    warmup: u64,
    epochs: u64,
    seed: u64,
    windows: &[(WindowSpec, EpochMerge)],
    detailed: bool,
    mode: td_suite::stream::FoldMode,
) -> (StreamSession, Vec<td_suite::stream::WindowReport>) {
    let mut rng = rng_from_seed(seed);
    let session = SessionBuilder::new(scheme).build(net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, warmup));
    let mut query = StreamQuery::scalar(Sum::default());
    for &(spec, merge) in windows {
        // Landmark windows never carry per-pane detail.
        query = if detailed && !matches!(spec, WindowSpec::Landmark) {
            query.window_detailed(spec, merge)
        } else {
            query.window(spec, merge)
        };
    }
    let _ = stream.register(query);
    stream.set_fold_mode(mode);
    let reports = stream.run(workload, &Global::new(loss), epochs, &mut rng);
    (stream, reports)
}

#[allow(clippy::too_many_arguments)]
fn stream_run<W: Workload>(
    scheme: Scheme,
    net: &Network,
    workload: &W,
    loss: f64,
    warmup: u64,
    epochs: u64,
    seed: u64,
    windows: &[(WindowSpec, EpochMerge)],
) -> (StreamSession, Vec<td_suite::stream::WindowReport>) {
    stream_run_with(
        scheme,
        net,
        workload,
        loss,
        warmup,
        epochs,
        seed,
        windows,
        false,
        td_suite::stream::FoldMode::Incremental,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// (a) `tumbling(1)` ≡ per-epoch answers, bit for bit, per scheme —
    /// pinned as a property over seeds and loss rates.
    #[test]
    fn tumbling_one_is_bit_identical_to_per_epoch_answers(
        seed in 1000u64..4000,
        loss in 0.0f64..0.35,
    ) {
        let net = net(seed, 150);
        let workload = DriftingStream::new(Synthetic::sum_workload(&net, seed), seed ^ 9);
        let (warmup, epochs) = (3u64, 12u64);
        for scheme in Scheme::all() {
            let baseline =
                baseline_epochs(scheme, &net, &workload, loss, warmup, epochs, seed ^ 0xE2E);
            let (_, reports) = stream_run(
                scheme,
                &net,
                &workload,
                loss,
                warmup,
                epochs,
                seed ^ 0xE2E,
                &[(WindowSpec::tumbling(1), EpochMerge::Add)],
            );
            prop_assert_eq!(reports.len(), baseline.len(), "{}", scheme.name());
            for (r, (epoch, answer)) in reports.iter().zip(&baseline) {
                prop_assert_eq!(r.start_epoch, *epoch);
                prop_assert_eq!(r.end_epoch, *epoch);
                prop_assert_eq!(
                    r.answer.to_bits(),
                    answer.to_bits(),
                    "{} epoch {} diverged: {} vs {}",
                    scheme.name(),
                    epoch,
                    r.answer,
                    answer
                );
            }
        }
    }
}

/// (b) sliding windows are recompute-free: one pane per query per
/// measured epoch regardless of window count, and exactly one
/// traversal's rounds — all verified through stats.
#[test]
fn sliding_windows_are_recompute_free() {
    let net = net(501, 200);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, 501), 502);
    let (warmup, epochs, loss, seed) = (2u64, 20u64, 0.2, 503u64);

    // Plain single-query baseline for the traversal budget.
    let model = Global::new(loss);
    let mut rng = rng_from_seed(seed);
    let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
    for epoch in 0..warmup + epochs {
        let readings = workload.readings(epoch);
        let proto = ScalarProtocol::new(Sum::default(), &readings);
        session.run_epoch(&proto, &model, epoch, &mut rng);
    }
    let baseline_rounds = session.stats().total_rounds();

    // Four windows over ONE query.
    let (stream, reports) = stream_run(
        Scheme::Td,
        &net,
        &workload,
        loss,
        warmup,
        epochs,
        seed,
        &[
            (WindowSpec::sliding(8, 1), EpochMerge::Add),
            (WindowSpec::sliding(8, 4), EpochMerge::Mean),
            (WindowSpec::tumbling(5), EpochMerge::Max),
            (WindowSpec::landmark(), EpochMerge::Add),
        ],
    );
    let st = stream.stream_stats();
    assert_eq!(st.measured_epochs, epochs);
    assert_eq!(
        st.panes_built,
        epochs * stream.query_count() as u64,
        "pane count per epoch must equal the query count, not the window count"
    );
    assert_eq!(stream.query_count(), 1);
    assert_eq!(
        stream.session().stats().total_rounds(),
        baseline_rounds,
        "four windows must cost exactly one traversal per epoch"
    );
    // Emission schedules: sliding(8,1) every pane, sliding(8,4) every
    // 4th, tumbling(5) every 5th, landmark every pane.
    let count_of = |w: usize| reports.iter().filter(|r| r.handle.window == w).count();
    assert_eq!(count_of(0), epochs as usize);
    assert_eq!(count_of(1), (epochs / 4) as usize);
    assert_eq!(count_of(2), (epochs / 5) as usize);
    assert_eq!(count_of(3), epochs as usize);
    // Under loss, degradation is visible, not silent.
    assert!(reports.iter().all(|r| r.min_coverage > 0.0));
    assert!(reports.iter().any(|r| r.is_lossy()));
}

/// (c) window answers are stable across a mid-window relabel: each
/// report is exactly the fold of the recorded per-epoch answers over
/// its span, relabels included — completed panes are never invalidated.
#[test]
fn window_answers_stable_across_adaptation_relabel() {
    let net = net(601, 300);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, 601), 602);
    // 25% global loss forces TD-Coarse to expand its delta during the
    // run; warmup 0 so the relabels land inside measured windows.
    let (warmup, epochs, loss, seed) = (0u64, 60u64, 0.25, 603u64);
    let baseline = baseline_epochs(
        Scheme::TdCoarse,
        &net,
        &workload,
        loss,
        warmup,
        epochs,
        seed,
    );
    let (_, reports) = stream_run_with(
        Scheme::TdCoarse,
        &net,
        &workload,
        loss,
        warmup,
        epochs,
        seed,
        &[(WindowSpec::sliding(10, 1), EpochMerge::Add)],
        true,
        td_suite::stream::FoldMode::Incremental,
    );
    assert!(
        reports.iter().any(|r| r.relabels > 0),
        "no adaptation relabel landed inside any window — test needs a harsher channel"
    );
    for r in &reports {
        let expected: f64 = baseline
            .iter()
            .filter(|(e, _)| (r.start_epoch..=r.end_epoch).contains(e))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            r.answer.to_bits(),
            expected.to_bits(),
            "window [{}, {}] (relabels {}) diverged from the pane fold",
            r.start_epoch,
            r.end_epoch,
            r.relabels
        );
        // Detailed window: full per-pane history rides the report.
        assert_eq!(r.pane_stats.len(), r.panes);
    }
}

/// (d) cheap adaptation is inherited, not re-implemented: the same
/// windowed TD-Coarse run over a patch-on-relabel session (the default)
/// and over a recompile-on-relabel session
/// (`patch_relabel_fraction(0.0)`) produces bit-identical window
/// reports and per-pane accounting — and the default run really did
/// patch (one compile for the whole run).
#[test]
fn stream_windows_identical_under_patched_and_recompiled_plans() {
    let net = net(701, 300);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, 701), 702);
    let (warmup, epochs, loss, seed) = (0u64, 60u64, 0.25, 703u64);
    let run = |patch_fraction: f64| {
        let mut rng = rng_from_seed(seed);
        let session = SessionBuilder::new(Scheme::TdCoarse)
            .patch_relabel_fraction(patch_fraction)
            .build(&net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, warmup));
        let query = StreamQuery::scalar(Sum::default())
            .window(WindowSpec::sliding(10, 1), EpochMerge::Add)
            .window(WindowSpec::tumbling(6), EpochMerge::Add);
        let _ = stream.register(query);
        let reports = stream.run(&workload, &Global::new(loss), epochs, &mut rng);
        let plan_stats = stream.session().plan_stats();
        let summary: Vec<_> = reports
            .iter()
            .map(|r| {
                (
                    r.start_epoch,
                    r.end_epoch,
                    r.answer.to_bits(),
                    r.relabels,
                    r.comm_bytes(),
                )
            })
            .collect();
        (summary, plan_stats)
    };
    let (patched, patched_plan) = run(1.0);
    let (recompiled, recompiled_plan) = run(0.0);
    assert_eq!(
        patched, recompiled,
        "stream reports diverged across plan-cache strategies"
    );
    assert!(
        patched.iter().any(|&(_, _, _, relabels, _)| relabels > 0),
        "no relabel landed inside any window — test needs a harsher channel"
    );
    assert_eq!(
        patched_plan.compiles, 1,
        "patched run recompiled: {patched_plan:?}"
    );
    assert!(
        patched_plan.patches > 0,
        "nothing patched: {patched_plan:?}"
    );
    assert_eq!(recompiled_plan.patches, 0);
    assert_eq!(
        recompiled_plan.compiles,
        1 + patched_plan.patches,
        "one recompile per relabel epoch: {recompiled_plan:?}"
    );
}

/// Compress a report into everything determinism-relevant, with the
/// answer bit-exact.
fn report_fingerprint(
    r: &td_suite::stream::WindowReport,
) -> (usize, usize, u64, u64, u64, u64, u64, u64, u32, usize) {
    (
        r.handle.query,
        r.handle.window,
        r.start_epoch,
        r.end_epoch,
        r.answer.to_bits(),
        r.coverage.to_bits(),
        r.nodes_joined,
        r.nodes_left,
        r.relabels,
        r.pane_stats.len(),
    )
}

/// (e) a hand-rolled `step` loop is bit-identical to `run`, warmup and
/// stats included — and likewise for `step_under_churn` vs
/// `run_under_churn`.
#[test]
fn step_loop_is_bit_identical_to_run() {
    use td_suite::netsim::churn::ChurnSchedule;
    let net = net(801, 150);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, 801), 802);
    let (warmup, epochs, loss, seed) = (3u64, 25u64, 0.2, 803u64);
    let windows = [
        (WindowSpec::sliding(6, 1), EpochMerge::Add),
        (WindowSpec::tumbling(4), EpochMerge::Mean),
    ];
    let build = || {
        let mut rng = rng_from_seed(seed);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, warmup));
        let mut query = StreamQuery::scalar(Sum::default());
        for &(spec, merge) in &windows {
            query = query.window(spec, merge);
        }
        let _ = stream.register(query);
        (stream, rng)
    };

    // Loss-only: run vs a step loop over the same epoch count.
    let model = Global::new(loss);
    let (mut batch, mut rng) = build();
    let batch_reports = batch.run(&workload, &model, epochs, &mut rng);
    let (mut stepped, mut rng) = build();
    let mut step_reports = Vec::new();
    for _ in 0..warmup + epochs {
        step_reports.extend(stepped.step(&workload, &model, &mut rng));
    }
    assert_eq!(
        batch_reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>(),
        step_reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>(),
        "step loop diverged from run"
    );
    assert_eq!(batch.stream_stats(), stepped.stream_stats());
    assert_eq!(batch.session().stats(), stepped.session().stats());

    // Churn: run_under_churn vs a step_under_churn loop.
    let schedule = ChurnSchedule::new(net.len(), 0.03, 5.0, 17);
    let (mut batch, mut rng) = build();
    let batch_reports = batch.run_under_churn(&workload, &model, &schedule, epochs, &mut rng);
    let (mut stepped, mut rng) = build();
    let mut step_reports = Vec::new();
    for _ in 0..warmup + epochs {
        step_reports.extend(stepped.step_under_churn(&workload, &model, &schedule, &mut rng));
    }
    assert_eq!(
        batch_reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>(),
        step_reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>(),
        "step_under_churn loop diverged from run_under_churn"
    );
    assert_eq!(batch.session().stats(), stepped.session().stats());
    assert!(
        batch.session().stats().nodes_left() > 0,
        "churn schedule never fired — the churn half of this pin is vacuous"
    );
}

/// (f) whole stream sessions can cross threads — the bound the service
/// layer's tenant hand-off requires, pinned at compile time.
#[test]
fn stream_session_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<StreamSession>();
    assert_send::<td_suite::stream::WindowReport>();
}

/// EVERY report field that could diverge between fold modes, floats
/// bit-exact, set-valued panes included.
#[allow(clippy::type_complexity)]
fn mode_fingerprint(
    r: &td_suite::stream::WindowReport,
) -> (
    (usize, usize),
    (u64, u64, usize, usize),
    (u64, u64, u64),
    (u32, u64, u64, u64),
    Vec<(u64, u64)>,
) {
    let freq_bits: Vec<(u64, u64)> = match &r.freq {
        None => Vec::new(),
        Some(f) => {
            let mut v: Vec<(u64, u64)> =
                f.counts().iter().map(|(&u, &c)| (u, c.to_bits())).collect();
            v.push((u64::MAX, f.total().to_bits()));
            v
        }
    };
    (
        (r.handle.query, r.handle.window),
        (r.start_epoch, r.end_epoch, r.panes, r.expected_panes),
        (
            r.answer.to_bits(),
            r.coverage.to_bits(),
            r.min_coverage.to_bits(),
        ),
        (r.relabels, r.nodes_joined, r.nodes_left, r.comm_bytes()),
        freq_bits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole pin: the O(1)-amortized incremental accumulators emit
    /// reports bit-for-bit identical to the from-scratch re-fold on
    /// EVERY field, for every `EpochMerge` op, across random window
    /// specs, churn, adaptation relabels, and worker counts.
    #[test]
    fn incremental_reports_are_bit_identical_to_refold(
        seed in 1u64..50_000,
        loss in 0.1f64..0.3,
        workers in 1usize..4,
        len_a in 2u32..12,
        hop_a in 1u32..12,
        len_b in 2u32..12,
        hop_b in 1u32..12,
        len_c in 2u32..12,
        hop_c in 1u32..12,
        len_d in 2u32..12,
        tumble in 1u32..8,
    ) {
        use td_suite::netsim::churn::ChurnSchedule;
        use td_suite::stream::FoldMode;
        let net = net(seed % 5000 + 42, 140);
        let workload = DriftingStream::new(Synthetic::sum_workload(&net, seed), seed ^ 5);
        // One window per merge law, shapes randomized (hop clamped into
        // 1..=len), plus a tumbling and a landmark window.
        let windows = [
            (WindowSpec::sliding(len_a, 1 + hop_a % len_a), EpochMerge::Add),
            (WindowSpec::sliding(len_b, 1 + hop_b % len_b), EpochMerge::Mean),
            (WindowSpec::sliding(len_c, 1 + hop_c % len_c), EpochMerge::Min),
            (WindowSpec::sliding(len_d, 1), EpochMerge::Max),
            (WindowSpec::tumbling(tumble), EpochMerge::Add),
            (WindowSpec::landmark(), EpochMerge::Mean),
        ];
        let schedule = ChurnSchedule::new(net.len(), 0.02, 5.0, seed ^ 0xC4);
        let run = |mode: FoldMode| {
            let mut rng = rng_from_seed(seed ^ 0xF01D);
            // TD-Coarse at 10–30% loss so adaptation relabels land
            // mid-window; churn exercises the join/leave aggregates.
            let session = SessionBuilder::new(Scheme::TdCoarse).build(&net, &mut rng);
            let mut stream = StreamSession::new(Driver::new(session, 1));
            stream.set_workers(workers);
            let mut query = StreamQuery::scalar(Sum::default());
            for &(spec, merge) in &windows {
                query = query.window(spec, merge);
            }
            let _ = stream.register(query);
            stream.set_fold_mode(mode);
            let reports =
                stream.run_under_churn(&workload, &Global::new(loss), &schedule, 40, &mut rng);
            let stats = *stream.stream_stats();
            (reports.iter().map(mode_fingerprint).collect::<Vec<_>>(), stats)
        };
        let (incremental, inc_stats) = run(FoldMode::Incremental);
        let (refold, ref_stats) = run(FoldMode::Refold);
        prop_assert_eq!(incremental, refold, "fold modes diverged");
        prop_assert_eq!(inc_stats.panes_built, ref_stats.panes_built);
        prop_assert_eq!(inc_stats.reports_emitted, ref_stats.reports_emitted);
        prop_assert_eq!(
            ref_stats.value_refolds, 0,
            "refold mode never runs the subtract path"
        );
    }
}

/// Set-valued panes, exact counters: a windowed frequent-items query
/// under the subtract-on-evict path is bit-identical to the re-fold,
/// with ZERO certificate-failure refolds (exact counters keep every
/// count a small integer), and a full lossless tumbling window reports
/// every truly frequent item of its merged epochs (the §6 guarantee
/// lifted to windows).
#[test]
fn windowed_frequent_items_exact_counters_hit_the_o1_path() {
    use td_suite::frequent::items::ItemBag;
    use td_suite::frequent::multipath::MultipathConfig;
    use td_suite::quantiles::gradient::MinTotalLoad;
    use td_suite::sketches::counter::ExactFactory;
    use td_suite::stream::{FoldMode, FreqStreamQuery};
    let net = net(901, 100);
    let support = 0.15;
    // Three drifting epoch slots: a stable heavy item plus a rotating
    // mid-weight item per slot.
    let slots = 3usize;
    let bags_by_epoch: Vec<Vec<ItemBag>> = (0..slots)
        .map(|s| {
            (0..net.len())
                .map(|i| {
                    if i == 0 {
                        ItemBag::new()
                    } else {
                        ItemBag::from_counts([
                            (1u64, 40),
                            (10 + s as u64, 25),
                            (100 + i as u64 % 7, 6),
                        ])
                    }
                })
                .collect()
        })
        .collect();
    let n_epoch: u64 = bags_by_epoch[0].iter().map(|b| b.total()).sum();
    let run = |mode: FoldMode| {
        let mut rng = rng_from_seed(902);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, 0));
        let query = StreamQuery::new(FreqStreamQuery::new(
            MultipathConfig::new(0.01, 1.5, n_epoch * 2, ExactFactory),
            MinTotalLoad::new(0.01, 2.25),
            support,
            bags_by_epoch.clone(),
        ))
        .window(WindowSpec::tumbling(3), EpochMerge::Add)
        .window(WindowSpec::sliding(6, 1), EpochMerge::Add)
        .window(WindowSpec::landmark(), EpochMerge::Add);
        let _ = stream.register(query);
        stream.set_fold_mode(mode);
        let reports = stream.run(
            &td_suite::core::driver::FixedReadings(vec![1; net.len()]),
            &td_suite::netsim::loss::NoLoss,
            18,
            &mut rng,
        );
        let stats = *stream.stream_stats();
        (reports, stats)
    };
    let (incremental, inc_stats) = run(FoldMode::Incremental);
    let (refold, _) = run(FoldMode::Refold);
    assert_eq!(
        incremental.iter().map(mode_fingerprint).collect::<Vec<_>>(),
        refold.iter().map(mode_fingerprint).collect::<Vec<_>>(),
        "set-valued fold modes diverged"
    );
    assert_eq!(
        inc_stats.value_refolds, 0,
        "exact integer counts must keep every eviction on the O(1) subtract path"
    );
    // Windowed no-false-negative check on full lossless tumbling
    // windows: merged truth over the window's epoch slots.
    let eps = 0.01 + 0.01; // ε_a + ε_b
    let mut checked = 0;
    for r in incremental
        .iter()
        .filter(|r| r.handle.window == 0 && r.panes == r.expected_panes)
    {
        let freq = r.freq.as_ref().expect("freq query emits set-valued panes");
        let reported = freq.report(support, eps);
        // Exact windowed truth from the bag construction.
        let mut true_counts = std::collections::BTreeMap::<u64, u64>::new();
        let mut true_total = 0u64;
        for epoch in r.start_epoch..=r.end_epoch {
            for bag in &bags_by_epoch[epoch as usize % slots] {
                for (item, count) in bag.iter() {
                    *true_counts.entry(item).or_insert(0) += count;
                    true_total += count;
                }
            }
        }
        for (&item, &count) in &true_counts {
            if count as f64 > support * true_total as f64 {
                assert!(
                    reported.contains(&item),
                    "window [{}, {}] missed frequent item {item}",
                    r.start_epoch,
                    r.end_epoch
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no truly frequent item ever checked — vacuous");
}

/// Set-valued panes, FM counters: fractional estimates fail the
/// exactness certificate, so evictions fall back to the O(len) refold —
/// and the answers STILL pin bit-for-bit against refold mode (the
/// fallback never loosens the equality, it only costs time).
#[test]
fn windowed_frequent_items_fm_counters_fall_back_without_loosening_the_pin() {
    use td_suite::frequent::items::ItemBag;
    use td_suite::frequent::multipath::MultipathConfig;
    use td_suite::quantiles::gradient::MinTotalLoad;
    use td_suite::sketches::counter::FmFactory;
    use td_suite::stream::{FoldMode, FreqStreamQuery};
    let net = net(911, 90);
    let bags: Vec<ItemBag> = (0..net.len())
        .map(|i| {
            if i == 0 {
                ItemBag::new()
            } else {
                ItemBag::from_counts([(1u64, 30), (2 + i as u64 % 5, 8)])
            }
        })
        .collect();
    let n_epoch: u64 = bags.iter().map(|b| b.total()).sum();
    let run = |mode: FoldMode| {
        let mut rng = rng_from_seed(912);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, 0));
        let query = StreamQuery::new(FreqStreamQuery::new(
            MultipathConfig::new(0.02, 1.5, n_epoch * 2, FmFactory { bitmaps: 16 }),
            MinTotalLoad::new(0.02, 2.25),
            0.2,
            vec![bags.clone()],
        ))
        .window(WindowSpec::sliding(5, 1), EpochMerge::Add);
        let _ = stream.register(query);
        stream.set_fold_mode(mode);
        let reports = stream.run(
            &td_suite::core::driver::FixedReadings(vec![1; net.len()]),
            &Global::new(0.15),
            15,
            &mut rng,
        );
        let stats = *stream.stream_stats();
        (reports, stats)
    };
    let (incremental, inc_stats) = run(FoldMode::Incremental);
    let (refold, _) = run(FoldMode::Refold);
    assert_eq!(
        incremental.iter().map(mode_fingerprint).collect::<Vec<_>>(),
        refold.iter().map(mode_fingerprint).collect::<Vec<_>>(),
        "FM fold modes diverged"
    );
    assert!(
        inc_stats.value_refolds > 0,
        "fractional FM estimates should fail the exactness certificate"
    );
}
