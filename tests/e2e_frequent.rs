//! End-to-end frequent-items runs through the Tributary-Delta protocol
//! (§6.3): tree tributaries running Algorithm 1, delta running
//! Algorithm 2, conversion at the boundary, ε split across the halves.

use td_suite::core::protocol::FreqProtocol;
use td_suite::core::session::{Scheme, Session, SessionConfig};
use td_suite::frequent::items::{count_items, true_frequent, ItemBag};
use td_suite::frequent::multipath::MultipathConfig;
use td_suite::netsim::loss::{Global, NoLoss};
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::quantiles::gradient::MinTotalLoad;
use td_suite::sketches::counter::{ExactFactory, FmFactory};

fn fixture(seed: u64) -> (Network, Vec<ItemBag>) {
    let mut rng = rng_from_seed(seed);
    let net = Network::random_connected(100, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng);
    use rand::Rng;
    let mut bags = vec![ItemBag::new(); net.len()];
    for u in net.sensor_ids() {
        for _ in 0..200 {
            if rng.gen_bool(0.35) {
                bags[u.index()].add(rng.gen_range(1u64..5), 1);
            } else {
                bags[u.index()].add(rng.gen_range(100u64..3000), 1);
            }
        }
    }
    (net, bags)
}

#[test]
fn td_frequent_lossless_exact_counters() {
    let (net, bags) = fixture(11);
    let n: u64 = bags.iter().map(|b| b.total()).sum();
    let support = 0.05;
    let mp_cfg = MultipathConfig::new(0.005, 1.5, n * 2, ExactFactory);
    let gradient = MinTotalLoad::new(0.005, 2.0);
    let mut rng = rng_from_seed(12);
    let mut session = Session::new(SessionConfig::paper_defaults(Scheme::Td), &net, &mut rng);
    let mut out = None;
    for epoch in 0..25 {
        let proto = FreqProtocol::new(mp_cfg.clone(), gradient, support, &bags);
        out = Some(session.run_epoch(&proto, &NoLoss, epoch, &mut rng));
    }
    let rec = out.unwrap();
    assert_eq!(rec.contributing, net.num_sensors());
    let output = rec.output;
    // N̂ exact with exact counters + no loss.
    assert!(
        (output.n_est - n as f64).abs() < 1e-6,
        "n_est {} vs {n}",
        output.n_est
    );
    for item in true_frequent(&bags, support) {
        assert!(
            output.reported.contains(&item),
            "missing frequent item {item}"
        );
    }
    // No absurd false positives: everything reported has real support
    // above (s − ε) · N.
    let truth = count_items(&bags);
    for item in &output.reported {
        assert!(
            truth.count(*item) as f64 > (support - 0.011) * n as f64,
            "false positive {item}"
        );
    }
}

#[test]
fn td_frequent_lossy_fm_counters_keeps_heavy_hitters() {
    let (net, bags) = fixture(13);
    let n: u64 = bags.iter().map(|b| b.total()).sum();
    let support = 0.05;
    let mp_cfg = MultipathConfig::new(0.005, 2.0, n * 2, FmFactory { bitmaps: 16 });
    let gradient = MinTotalLoad::new(0.005, 2.0);
    let mut rng = rng_from_seed(14);
    let mut session = Session::new(SessionConfig::paper_defaults(Scheme::Td), &net, &mut rng);
    let model = Global::new(0.2);
    let mut out = None;
    for epoch in 0..60 {
        let proto = FreqProtocol::new(mp_cfg.clone(), gradient, support, &bags);
        out = Some(session.run_epoch(&proto, &model, epoch, &mut rng));
    }
    let output = out.unwrap().output;
    // The four heavy hitters carry ~8-9% each; under 20% loss with an
    // adapted delta they must all be reported.
    for item in true_frequent(&bags, support) {
        assert!(
            output.reported.contains(&item),
            "missing heavy hitter {item} (reported {:?})",
            output.reported
        );
    }
}

#[test]
fn pure_tree_freq_protocol_via_session() {
    // The FreqProtocol also runs on the all-tree extreme (TAG scheme).
    let (net, bags) = fixture(15);
    let n: u64 = bags.iter().map(|b| b.total()).sum();
    let mp_cfg = MultipathConfig::new(0.005, 1.5, n * 2, ExactFactory);
    let gradient = MinTotalLoad::new(0.005, 2.0);
    let mut rng = rng_from_seed(16);
    let mut session = Session::with_paper_defaults(Scheme::Tag, &net, &mut rng);
    let proto = FreqProtocol::new(mp_cfg, gradient, 0.05, &bags);
    let rec = session.run_epoch(&proto, &NoLoss, 0, &mut rng);
    assert_eq!(rec.output.n_est, n as f64);
    for item in true_frequent(&bags, 0.05) {
        assert!(rec.output.reported.contains(&item));
    }
}
