//! End-to-end multi-query session equivalence: a `QuerySet` running
//! Count + Sum + Average + frequent-items concurrently must produce, per
//! query, outputs identical to four dedicated single-query sessions
//! under the same seed and loss model — while `CommStats` records only
//! one traversal's worth of message rounds.

use td_suite::aggregates::average::Average;
use td_suite::aggregates::count::Count;
use td_suite::aggregates::sum::Sum;
use td_suite::core::protocol::{FreqOutput, FreqProtocol, ScalarProtocol};
use td_suite::core::query::QuerySet;
use td_suite::core::session::{Scheme, Session, SessionBuilder};
use td_suite::frequent::items::ItemBag;
use td_suite::frequent::multipath::MultipathConfig;
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::quantiles::gradient::MinTotalLoad;
use td_suite::sketches::counter::ExactFactory;

const SEED: u64 = 90210;
const EPOCHS: u64 = 30;

struct Fixture {
    net: Network,
    values: Vec<u64>,
    bags: Vec<ItemBag>,
    mp_cfg: MultipathConfig<ExactFactory>,
    gradient: MinTotalLoad,
}

fn fixture(scheme_salt: u64) -> Fixture {
    let mut rng = rng_from_seed(SEED ^ scheme_salt);
    let net = Network::random_connected(180, 13.0, 13.0, Position::new(6.5, 6.5), 2.5, &mut rng);
    let values: Vec<u64> = (0..net.len() as u64).map(|i| 10 + (i * 7) % 60).collect();
    let bags: Vec<ItemBag> = (0..net.len())
        .map(|i| {
            if i == 0 {
                ItemBag::new() // base station holds no items
            } else {
                ItemBag::from_counts([(1u64, 30), (2 + i as u64 % 5, 8), (100 + i as u64, 2)])
            }
        })
        .collect();
    let n_total: u64 = bags.iter().map(|b| b.total()).sum();
    Fixture {
        net,
        values,
        bags,
        mp_cfg: MultipathConfig::new(0.01, 1.5, n_total * 2, ExactFactory),
        gradient: MinTotalLoad::new(0.01, 2.25),
    }
}

/// The four dedicated sessions and the bundled session all start from
/// the same seed, so the topology build and per-epoch loss draws line up
/// exactly; any per-query divergence would be an engine bug.
fn fresh_session(fx: &Fixture, scheme: Scheme) -> (Session, rand::rngs::StdRng) {
    let mut rng = rng_from_seed(SEED + 1);
    let session = SessionBuilder::new(scheme).build(&fx.net, &mut rng);
    (session, rng)
}

#[derive(Default)]
struct SingleRuns {
    count: Vec<f64>,
    sum: Vec<f64>,
    average: Vec<f64>,
    freq: Vec<FreqOutput>,
    rounds_per_query: Vec<u64>,
    bytes_total: u64,
}

fn run_singles(fx: &Fixture, scheme: Scheme, model: &Global) -> SingleRuns {
    let mut out = SingleRuns::default();

    let (mut session, mut rng) = fresh_session(fx, scheme);
    for epoch in 0..EPOCHS {
        let proto = ScalarProtocol::new(Count::default(), &fx.values);
        out.count
            .push(session.run_epoch(&proto, model, epoch, &mut rng).output);
    }
    out.rounds_per_query.push(session.stats().total_rounds());
    out.bytes_total += session.stats().total_bytes();

    let (mut session, mut rng) = fresh_session(fx, scheme);
    for epoch in 0..EPOCHS {
        let proto = ScalarProtocol::new(Sum::default(), &fx.values);
        out.sum
            .push(session.run_epoch(&proto, model, epoch, &mut rng).output);
    }
    out.rounds_per_query.push(session.stats().total_rounds());
    out.bytes_total += session.stats().total_bytes();

    let (mut session, mut rng) = fresh_session(fx, scheme);
    for epoch in 0..EPOCHS {
        let proto = ScalarProtocol::new(Average::default(), &fx.values);
        out.average
            .push(session.run_epoch(&proto, model, epoch, &mut rng).output);
    }
    out.rounds_per_query.push(session.stats().total_rounds());
    out.bytes_total += session.stats().total_bytes();

    let (mut session, mut rng) = fresh_session(fx, scheme);
    for epoch in 0..EPOCHS {
        let proto = FreqProtocol::new(fx.mp_cfg.clone(), fx.gradient, 0.15, &fx.bags);
        out.freq
            .push(session.run_epoch(&proto, model, epoch, &mut rng).output);
    }
    out.rounds_per_query.push(session.stats().total_rounds());
    out.bytes_total += session.stats().total_bytes();

    out
}

fn check_scheme(scheme: Scheme, scheme_salt: u64) {
    let fx = fixture(scheme_salt);
    let model = Global::new(0.2);
    let singles = run_singles(&fx, scheme, &model);

    // Every dedicated session saw the identical loss stream, so each
    // made the same number of send rounds.
    assert!(
        singles
            .rounds_per_query
            .iter()
            .all(|&r| r == singles.rounds_per_query[0]),
        "{}: dedicated sessions diverged in rounds: {:?}",
        scheme.name(),
        singles.rounds_per_query
    );

    // The bundled session: all four queries per epoch, one traversal.
    let (mut session, mut rng) = fresh_session(&fx, scheme);
    let mut bundled = SingleRuns::default();
    for epoch in 0..EPOCHS {
        let count_p = ScalarProtocol::new(Count::default(), &fx.values);
        let sum_p = ScalarProtocol::new(Sum::default(), &fx.values);
        let avg_p = ScalarProtocol::new(Average::default(), &fx.values);
        let freq_p = FreqProtocol::new(fx.mp_cfg.clone(), fx.gradient, 0.15, &fx.bags);
        let mut set = QuerySet::new();
        let h_count = set.register(&count_p);
        let h_sum = set.register(&sum_p);
        let h_avg = set.register(&avg_p);
        let h_freq = set.register(&freq_p);
        assert_eq!(set.len(), 4);
        let mut rec = session.run_set(&set, &model, epoch, &mut rng);
        bundled.count.push(*rec.answers.get(h_count));
        bundled.sum.push(*rec.answers.get(h_sum));
        bundled.average.push(*rec.answers.get(h_avg));
        bundled.freq.push(rec.answers.take(h_freq));
    }

    // Bit-for-bit per-query equivalence, every epoch.
    assert_eq!(
        bundled.count,
        singles.count,
        "{}: Count diverged",
        scheme.name()
    );
    assert_eq!(bundled.sum, singles.sum, "{}: Sum diverged", scheme.name());
    assert_eq!(
        bundled.average,
        singles.average,
        "{}: Average diverged",
        scheme.name()
    );
    for (epoch, (b, a)) in bundled.freq.iter().zip(&singles.freq).enumerate() {
        assert_eq!(
            b.n_est,
            a.n_est,
            "{}: frequent-items N-hat diverged at epoch {epoch}",
            scheme.name()
        );
        assert_eq!(
            b.reported,
            a.reported,
            "{}: frequent-items report diverged at epoch {epoch}",
            scheme.name()
        );
        assert_eq!(
            b.estimates.counts,
            a.estimates.counts,
            "{}: frequent-items estimates diverged at epoch {epoch}",
            scheme.name()
        );
    }

    // One traversal's worth of message rounds — identical to what ONE
    // dedicated query costs, four times less than four of them.
    assert_eq!(
        session.stats().total_rounds(),
        singles.rounds_per_query[0],
        "{}: bundled rounds exceed one traversal",
        scheme.name()
    );
    // Byte accounting: payloads are additive, so the bundle never costs
    // more than four dedicated traversals — and for the adaptive schemes
    // it costs strictly less, because the per-link envelope overhead
    // (count sketch + extremum reports) is charged once instead of four
    // times.
    assert!(
        session.stats().total_bytes() <= singles.bytes_total,
        "{}: bundle bytes {} above dedicated total {}",
        scheme.name(),
        session.stats().total_bytes(),
        singles.bytes_total
    );
    if matches!(scheme, Scheme::Td | Scheme::TdCoarse) {
        assert!(
            session.stats().total_bytes() < singles.bytes_total,
            "{}: shared envelope saved no bytes ({} vs {})",
            scheme.name(),
            session.stats().total_bytes(),
            singles.bytes_total
        );
    }
}

#[test]
fn td_multiquery_matches_dedicated_sessions() {
    check_scheme(Scheme::Td, 1);
}

#[test]
fn td_coarse_multiquery_matches_dedicated_sessions() {
    check_scheme(Scheme::TdCoarse, 2);
}

#[test]
fn sd_multiquery_matches_dedicated_sessions() {
    check_scheme(Scheme::Sd, 3);
}

#[test]
fn tag_multiquery_matches_dedicated_sessions() {
    check_scheme(Scheme::Tag, 4);
}
