//! End-to-end service-layer pins:
//!
//! (a) **tenant isolation** — N tenants with distinct seeds, hosted on
//!     1, 2, and 8 workers, each produce a report stream bit-identical
//!     to stepping the same tenant alone in a serial loop, including
//!     tenants driven under churn schedules and a mid-run reconfigure
//!     (register a second query, inject churn, deregister) applied at a
//!     pinned epoch through the handle;
//! (b) **park-not-drop backpressure** — a capacity-1 outbox parks the
//!     tenant (visible in `ServiceStats`) and still loses nothing;
//! (c) **deterministic drain-on-remove** — removing a live tenant
//!     returns exactly a prefix of its serial report stream, cut at an
//!     epoch boundary.

use proptest::prelude::*;
use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::{Driver, FixedReadings};
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::churn::{ChurnEvents, ChurnSchedule};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::{NodeId, Position};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::service::{tenant_rng, ServiceRuntime, Tenant, TenantHandle, TenantPhase};
use td_suite::stream::{EpochMerge, StreamQuery, StreamSession, WindowReport, WindowSpec};

/// Everything determinism-relevant about a report, answer bit-exact.
type Fingerprint = (usize, usize, u64, u64, u64, u64, u64, u64, u32, usize);

fn fingerprint(r: &WindowReport) -> Fingerprint {
    (
        r.handle.query,
        r.handle.window,
        r.start_epoch,
        r.end_epoch,
        r.answer.to_bits(),
        r.coverage.to_bits(),
        r.nodes_joined,
        r.nodes_left,
        r.relabels,
        r.pane_stats.len(),
    )
}

/// One tenant's blueprint: enough to build it twice — once for the
/// service, once for the serial reference.
#[derive(Clone)]
struct Blueprint {
    seed: u64,
    sensors: usize,
    scheme: Scheme,
    loss: f64,
    warmup: u64,
    churn: bool,
}

impl Blueprint {
    fn network(&self) -> Network {
        let mut rng = rng_from_seed(self.seed ^ 0xBEEF);
        Network::random_connected(
            self.sensors,
            10.0,
            10.0,
            Position::new(5.0, 5.0),
            2.5,
            &mut rng,
        )
    }

    fn session(&self, net: &Network) -> StreamSession {
        let mut rng = rng_from_seed(self.seed ^ 0xCAFE);
        let session = SessionBuilder::new(self.scheme).build(net, &mut rng);
        let mut stream = StreamSession::new(Driver::new(session, self.warmup));
        let _ = stream.register(
            StreamQuery::scalar(Sum::default())
                .window(WindowSpec::sliding(4, 1), EpochMerge::Add)
                .window(WindowSpec::landmark(), EpochMerge::Mean),
        );
        stream
    }

    fn schedule(&self, net: &Network) -> Option<ChurnSchedule> {
        self.churn
            .then(|| ChurnSchedule::new(net.len(), 0.04, 4.0, self.seed ^ 0xD00D))
    }

    fn second_query() -> StreamQuery<td_suite::stream::ScalarQuery<Sum>> {
        StreamQuery::scalar(Sum::default()).window(WindowSpec::tumbling(2), EpochMerge::Add)
    }

    fn injected_events(epoch: u64) -> ChurnEvents {
        ChurnEvents {
            epoch,
            joined: vec![],
            left: vec![NodeId(3), NodeId(5)],
            absent: vec![NodeId(3), NodeId(5)],
        }
    }

    /// The serial ground truth: step the same pieces by hand through
    /// the scripted reconfiguration (pause at `e1`: add a query, inject
    /// churn; pause at `e2`: deregister query 0; run to `e3`).
    fn serial(&self, e1: u64, e2: u64, e3: u64) -> Vec<Fingerprint> {
        let net = self.network();
        let mut session = self.session(&net);
        let workload = FixedReadings(vec![2; net.len()]);
        let model = Global::new(self.loss);
        let schedule = self.schedule(&net);
        let mut rng = tenant_rng(self.seed);
        let mut out = Vec::new();
        let step = |s: &mut StreamSession, rng: &mut rand::rngs::StdRng| match &schedule {
            Some(sched) => s.step_under_churn(&workload, &model, sched, rng),
            None => s.step(&workload, &model, rng),
        };
        for _ in 0..e1 {
            out.extend(step(&mut session, &mut rng));
        }
        let _ = session.register(Self::second_query());
        session.inject_churn(&Self::injected_events(e1));
        for _ in e1..e2 {
            out.extend(step(&mut session, &mut rng));
        }
        session.deregister(0).expect("query 0 is deregisterable");
        for _ in e2..e3 {
            out.extend(step(&mut session, &mut rng));
        }
        out.iter().map(fingerprint).collect()
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::yield_now();
    }
}

/// Drain until the tenant is paused at `target` epochs with nothing
/// queued. Draining while waiting matters twice over: a tenant whose
/// reports overflow its outbox parks and cannot reach its pause until
/// someone makes room, and "paused" alone is ambiguous right after a
/// `resume` (the worker may not have seen the new bound yet), so the
/// epoch target is what actually anchors the rendezvous.
fn drain_paused(handle: &TenantHandle, target: u64, sink: &mut Vec<WindowReport>) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let got = handle.drain(16);
        let was_empty = got.is_empty();
        sink.extend(got.into_iter().map(|t| t.report));
        if was_empty {
            let st = handle.status();
            if st.epochs_driven >= target
                && st.phase == TenantPhase::Paused
                && st.queued_reports == 0
            {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out draining to pause at {target} (status {st:?})"
            );
            std::thread::yield_now();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// (a) bit-exact tenant isolation on 1, 2, and 8 workers, with a
    /// scripted mid-run reconfiguration on every tenant.
    #[test]
    fn tenants_are_bit_identical_to_serial_runs(base in 10_000u64..40_000) {
        let blueprints: Vec<Blueprint> = (0..5u64)
            .map(|i| Blueprint {
                seed: base.wrapping_mul(31).wrapping_add(i * 977),
                sensors: 30 + (i as usize) * 7,
                scheme: [Scheme::Tag, Scheme::Td, Scheme::TdCoarse][i as usize % 3],
                loss: 0.05 + 0.04 * i as f64,
                warmup: i % 3,
                churn: i % 2 == 1,
            })
            .collect();
        let (e1, e2, e3) = (5u64, 9u64, 13u64);
        let serial: Vec<Vec<Fingerprint>> =
            blueprints.iter().map(|b| b.serial(e1, e2, e3)).collect();

        for workers in [1usize, 2, 8] {
            let runtime = ServiceRuntime::new(workers);
            let handles: Vec<TenantHandle> = blueprints
                .iter()
                .map(|b| {
                    let net = b.network();
                    let mut builder = Tenant::builder(
                        b.session(&net),
                        FixedReadings(vec![2; net.len()]),
                        Global::new(b.loss),
                    )
                    .seed(b.seed)
                    .run_until(e1)
                    .outbox_capacity(8);
                    if let Some(sched) = b.schedule(&net) {
                        builder = builder.churn(sched);
                    }
                    runtime.submit(builder.build())
                })
                .collect();

            let mut streams: Vec<Vec<WindowReport>> = vec![Vec::new(); handles.len()];
            // Phase 1: run to the first pause, then reconfigure. The
            // pause makes the epoch-addressed ops race-free: queue them
            // first, resume last.
            for (h, sink) in handles.iter().zip(&mut streams) {
                drain_paused(h, e1, sink);
                let wh = h.register_at(e1, Blueprint::second_query());
                prop_assert_eq!(wh.len(), 1);
                prop_assert_eq!(wh[0].query, 1);
                h.inject_churn_at(e1, Blueprint::injected_events(e1));
                h.resume(Some(e2));
            }
            // Phase 2: deregister the original query at the second
            // pause, then run to the end.
            for (h, sink) in handles.iter().zip(&mut streams) {
                drain_paused(h, e2, sink);
                h.deregister_at(e2, 0);
                h.resume(Some(e3));
            }
            for (h, sink) in handles.iter().zip(&mut streams) {
                drain_paused(h, e3, sink);
            }

            let stats = runtime.shutdown();
            prop_assert_eq!(stats.reports_dropped, 0, "park-not-drop violated");
            prop_assert_eq!(stats.late_ops, 0, "an op missed its epoch");
            prop_assert_eq!(stats.rejected_ops, 0);
            prop_assert_eq!(
                stats.epochs_driven,
                e3 * handles.len() as u64,
                "every tenant runs exactly e3 epochs"
            );
            prop_assert_eq!(stats.workers, workers);
            prop_assert_eq!(
                stats.shard_occupancy.iter().sum::<u64>(),
                stats.tenants_live
            );

            for (i, (sink, expect)) in streams.iter().zip(&serial).enumerate() {
                let got: Vec<Fingerprint> = sink.iter().map(fingerprint).collect();
                prop_assert_eq!(
                    &got,
                    expect,
                    "tenant {} diverged from its serial run on {} workers",
                    i,
                    workers
                );
            }
        }
    }
}

/// (b) a full outbox parks the tenant — time, not data loss.
#[test]
fn full_outbox_parks_and_never_drops() {
    let bp = Blueprint {
        seed: 4242,
        sensors: 40,
        scheme: Scheme::Td,
        loss: 0.1,
        warmup: 0,
        churn: false,
    };
    let epochs = 20u64;
    // Serial reference: plain step loop, no reconfiguration.
    let net = bp.network();
    let mut session = bp.session(&net);
    let workload = FixedReadings(vec![2; net.len()]);
    let model = Global::new(bp.loss);
    let mut rng = tenant_rng(bp.seed);
    let mut serial = Vec::new();
    for _ in 0..epochs {
        serial.extend(session.step(&workload, &model, &mut rng));
    }

    let runtime = ServiceRuntime::new(2);
    let handle = runtime.submit(
        Tenant::builder(bp.session(&net), workload, model)
            .seed(bp.seed)
            .run_until(epochs)
            .outbox_capacity(1)
            .build(),
    );
    // Don't drain until the tenant is visibly parked on its 1-slot
    // outbox (each epoch emits 2+ reports, so pressure is immediate).
    wait_for("tenant parks", || {
        handle.status().phase == TenantPhase::Parked
    });
    let mut reports = Vec::new();
    drain_paused(&handle, epochs, &mut reports);
    let stats = runtime.shutdown();
    assert!(stats.parks > 0, "capacity-1 outbox never parked: {stats}");
    assert!(stats.park_nanos > 0);
    assert_eq!(stats.reports_dropped, 0, "parked tenant dropped reports");
    assert_eq!(
        reports.iter().map(fingerprint).collect::<Vec<_>>(),
        serial.iter().map(fingerprint).collect::<Vec<_>>(),
        "backpressured stream diverged from serial"
    );
}

/// (c) removing a live tenant yields exactly a prefix of its serial
/// stream, cut at an epoch boundary, with nothing lost in the cut.
#[test]
fn remove_drains_a_deterministic_epoch_prefix() {
    let bp = Blueprint {
        seed: 777,
        sensors: 40,
        scheme: Scheme::Tag,
        loss: 0.05,
        warmup: 1,
        churn: false,
    };
    let net = bp.network();
    let workload = FixedReadings(vec![2; net.len()]);
    let model = Global::new(bp.loss);
    // Long serial reference to compare prefixes against. Reports per
    // measured epoch is fixed (2 windows), so an epoch-boundary cut is
    // a clean slice.
    let mut session = bp.session(&net);
    let mut rng = tenant_rng(bp.seed);
    let mut serial = Vec::new();
    for _ in 0..200 {
        serial.extend(session.step(&workload, &model, &mut rng));
    }

    let runtime = ServiceRuntime::new(2);
    let handle = runtime.submit(
        Tenant::builder(bp.session(&net), workload, model)
            .seed(bp.seed)
            .build(), // no run_until: free-running until removed
    );
    wait_for("some progress", || handle.status().epochs_driven >= 5);
    let removed = handle.remove();
    let stats = runtime.shutdown();
    assert_eq!(stats.tenants_removed, 1);
    assert_eq!(stats.tenants_live, 0);
    assert_eq!(stats.reports_dropped, 0);
    // The drain is every report from warmup..cut — a prefix of serial,
    // 2 reports per measured epoch.
    let got: Vec<Fingerprint> = removed.iter().map(|t| fingerprint(&t.report)).collect();
    assert!(!got.is_empty(), "removed before producing anything");
    assert_eq!(got.len() % 2, 0, "cut split an epoch's report pair");
    assert_eq!(
        got.as_slice(),
        &serial.iter().map(fingerprint).collect::<Vec<_>>()[..got.len()],
        "removed tenant's stream is not a serial prefix"
    );
}
