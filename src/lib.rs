//! # td-suite — umbrella crate for the Tributary-Delta reproduction
//!
//! Re-exports every crate in the workspace under one roof so examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! - [`netsim`] — the sensor-network simulator substrate
//! - [`topology`] — TAG trees, rings, bushy trees, labeled TD graphs
//! - [`sketches`] — duplicate-insensitive synopses (FM, KMV, min-hash)
//! - [`aggregates`] — Count/Sum/Min/Max/Average/samples in the SG/SF/SE framework
//! - [`quantiles`] — Greenwald–Khanna summaries with precision gradients
//! - [`frequent`] — the paper's frequent-items algorithms (§6)
//! - [`core`] — the Tributary-Delta framework: the **multi-query session
//!   engine** (`SessionBuilder` → `QuerySet` → one traversal for N
//!   queries), the scenario `Driver`, and the adaptation strategies (§3–4)
//! - [`workloads`] — LabData / Synthetic scenarios, failure models, and
//!   their `Workload` adapters for the driver (§7.1)
//! - [`stream`] — the cross-epoch streaming window engine:
//!   tumbling/sliding/landmark windows over the session engine, one
//!   shared pane series per protocol (extension)
//! - [`service`] — the multi-tenant hosting layer: a fixed worker pool
//!   multiplexing thousands of independent tenant sessions with sharded
//!   ownership, bounded outboxes, and bit-deterministic isolation
//!   (extension)
//! - [`telemetry`] — lock-free sharded metrics, structured events keyed
//!   by the logical clock, and epoch-lifecycle phase profiling; compiles
//!   out under `--no-default-features` and is provably inert either way
//!   (extension)
//!
//! The typical entry point is the session engine:
//!
//! ```
//! use td_suite::core::protocol::ScalarProtocol;
//! use td_suite::core::query::QuerySet;
//! use td_suite::core::session::{Scheme, SessionBuilder};
//! use td_suite::netsim::loss::Global;
//! use td_suite::netsim::rng::rng_from_seed;
//! use td_suite::workloads::synthetic::Synthetic;
//!
//! let net = Synthetic::small(120).build(1);
//! let mut rng = rng_from_seed(2);
//! let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
//!
//! // Any number of heterogeneous queries, one traversal per epoch.
//! let values = vec![1u64; net.len()];
//! let count = ScalarProtocol::new(td_suite::aggregates::count::Count::default(), &values);
//! let sum = ScalarProtocol::new(td_suite::aggregates::sum::Sum::default(), &values);
//! let mut set = QuerySet::new();
//! let h_count = set.register(&count);
//! let h_sum = set.register(&sum);
//! let rec = session.run_set(&set, &Global::new(0.1), 0, &mut rng);
//! // Two answers, one traversal (the estimates are independent sketch
//! // draws, so only sanity is asserted here).
//! assert!(*rec.answers.get(h_count) > 0.0);
//! assert!(*rec.answers.get(h_sum) > 0.0);
//! ```

// Compile and run the README's code blocks as doctests, so the
// quickstart can never rot (`cargo test --doc -p td-suite`).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use td_aggregates as aggregates;
pub use td_frequent as frequent;
pub use td_netsim as netsim;
pub use td_quantiles as quantiles;
pub use td_service as service;
pub use td_sketches as sketches;
pub use td_stream as stream;
pub use td_telemetry as telemetry;
pub use td_topology as topology;
pub use td_workloads as workloads;
pub use tributary_delta as core;
