//! # td-suite — umbrella crate for the Tributary-Delta reproduction
//!
//! Re-exports every crate in the workspace under one roof so examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! - [`netsim`] — the sensor-network simulator substrate
//! - [`topology`] — TAG trees, rings, bushy trees, labeled TD graphs
//! - [`sketches`] — duplicate-insensitive synopses (FM, KMV, min-hash)
//! - [`aggregates`] — Count/Sum/Min/Max/Average/samples in the SG/SF/SE framework
//! - [`quantiles`] — Greenwald–Khanna summaries with precision gradients
//! - [`frequent`] — the paper's frequent-items algorithms (§6)
//! - [`core`] — the Tributary-Delta framework and adaptation strategies (§3–4)
//! - [`workloads`] — LabData / Synthetic scenarios and failure models (§7.1)

pub use td_aggregates as aggregates;
pub use td_frequent as frequent;
pub use td_netsim as netsim;
pub use td_quantiles as quantiles;
pub use td_sketches as sketches;
pub use td_topology as topology;
pub use td_workloads as workloads;
pub use tributary_delta as core;
